"""Barnes-Hut n-body (SPLASH-2 ``barnes``).

Pattern fidelity:

* particles are 64-byte records in a shared array, owned in contiguous
  per-thread chunks; each thread writes only its own records but reads
  position fields of tree nodes and remote particles — the record-
  grained sharing of Figure 8e (true sharing falls, false sharing rises
  with line size);
* the force phase traverses a shared tree whose nodes are read by every
  thread (heavy read sharing, like the octree cells of the original);
* each iteration rebuilds the tree (thread 0 writes every node),
  invalidating all readers — the true-sharing component.
"""

from __future__ import annotations

from repro.frontend.api import ThreadContext
from repro.workloads.base import WorkloadFactory, register_workload

RECORD_BYTES = 64
_POS = 0
_ACC = 32
NODE_BYTES = 64   # centre-of-mass + mass + child summary


def _particle(base: int, i: int) -> int:
    return base + i * RECORD_BYTES


def _node(base: int, i: int) -> int:
    return base + i * NODE_BYTES


def _worker(ctx: ThreadContext, index: int, shared: dict):
    nthreads = shared["nthreads"]
    per = shared["particles_per_thread"]
    particles = shared["particles"]
    tree = shared["tree"]
    tree_nodes = shared["tree_nodes"]
    barrier = shared["barrier"]
    iterations = shared["iterations"]
    my_first = index * per

    for it in range(iterations):
        # Tree build: thread 0 recomputes every node from a sample of
        # particles (serial, as a stand-in for the locked octree insert).
        if index == 0:
            total = per * nthreads
            for n in range(tree_nodes):
                i = (n * 7) % total
                pos = yield from ctx.load_f64(_particle(particles, i)
                                              + _POS)
                yield from ctx.fp_compute(80)
                yield from ctx.store_f64(_node(tree, n), pos * 0.5)
                yield from ctx.store_f64(_node(tree, n) + 8,
                                         float(total) / tree_nodes)
        yield from ctx.barrier(barrier + 128 * it, nthreads)

        # Force computation: walk the shared tree for each owned
        # particle (read-mostly traversal), then store accelerations.
        for i in range(my_first, my_first + per):
            my_pos = yield from ctx.load_f64(_particle(particles, i)
                                             + _POS)
            acc = 0.0
            # Walk a root-to-leaf path whose shape depends on the
            # particle (different subsets of nodes per particle).
            n = 0
            while n < tree_nodes:
                centre = yield from ctx.load_f64(_node(tree, n))
                mass = yield from ctx.load_f64(_node(tree, n) + 8)
                yield from ctx.fp_compute(200)
                acc += mass / (abs(centre - my_pos) + 1.0)
                far = abs(centre - my_pos) > 1.0
                yield from ctx.branch(far)
                n = 2 * n + (1 if far else 2)
            yield from ctx.store_f64(_particle(particles, i) + _ACC, acc)
        yield from ctx.barrier(barrier + 128 * it + 64, nthreads)

        # Update: integrate owned particles (local read-modify-write).
        for i in range(my_first, my_first + per):
            acc = yield from ctx.load_f64(_particle(particles, i) + _ACC)
            pos = yield from ctx.load_f64(_particle(particles, i) + _POS)
            yield from ctx.fp_compute(150)
            yield from ctx.store_f64(_particle(particles, i) + _POS,
                                     pos + acc * 0.001)


def build(nthreads: int, scale: float = 1.0, particles: int = 0,
          iterations: int = 2, tree_nodes: int = 63):
    if particles <= 0:
        particles = max(int(16 * nthreads * scale), 2 * nthreads)
    per = max(particles // nthreads, 1)

    def main(ctx: ThreadContext):
        total = per * nthreads
        array = yield from ctx.malloc(total * RECORD_BYTES, align=64)
        tree = yield from ctx.malloc(tree_nodes * NODE_BYTES, align=64)
        barrier = yield from ctx.malloc(128 * iterations + 64, align=64)
        for i in range(total):
            yield from ctx.store_f64(_particle(array, i) + _POS,
                                     float((i * 37) % 101) * 0.07)
        shared = {
            "nthreads": nthreads,
            "particles_per_thread": per,
            "particles": array,
            "tree": tree,
            "tree_nodes": tree_nodes,
            "barrier": barrier,
            "iterations": iterations,
        }
        threads = []
        for index in range(1, nthreads):
            thread = yield from ctx.spawn(_worker, index, shared)
            threads.append(thread)
        yield from _worker(ctx, 0, shared)
        yield from ctx.join_all(threads)
        pos = yield from ctx.load_f64(_particle(array, 0) + _POS)
        return pos

    return main


register_workload(WorkloadFactory(
    name="barnes",
    build=build,
    description="Barnes-Hut n-body with a shared read-mostly tree",
    comm_intensity="medium",
))
