"""Workload registry and shared program-construction helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional

from repro.common.errors import ConfigError
from repro.frontend.api import ThreadContext

#: A main-thread program: ``main(ctx)`` generator.
MainProgram = Callable[..., Generator]


@dataclass
class WorkloadFactory:
    """A named workload with tunable thread count and problem scale.

    ``build(nthreads, scale)`` returns the main program to hand to
    :meth:`repro.sim.Simulator.run`.  ``scale`` multiplies the default
    problem size; benchmarks use small scales so pure-Python simulation
    stays fast, while tests use tiny ones.
    """

    name: str
    build: Callable[..., MainProgram]
    description: str = ""
    #: Relative computation-to-communication ratio (documentation only).
    comm_intensity: str = "medium"

    def main(self, nthreads: int, scale: float = 1.0,
             **params: Any) -> MainProgram:
        return self.build(nthreads=nthreads, scale=scale, **params)


WORKLOADS: Dict[str, WorkloadFactory] = {}


def register_workload(factory: WorkloadFactory) -> WorkloadFactory:
    if factory.name in WORKLOADS:
        raise ConfigError(f"duplicate workload {factory.name!r}")
    WORKLOADS[factory.name] = factory
    return factory


def get_workload(name: str) -> WorkloadFactory:
    factory = WORKLOADS.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}")
    return factory


# -- shared program fragments ----------------------------------------------------

def fork_join_main(worker: Callable[..., Generator],
                   nthreads: int,
                   setup: Optional[Callable[..., Generator]] = None,
                   teardown: Optional[Callable[..., Generator]] = None,
                   shared_args: Callable[..., tuple] = lambda s: (s,),
                   ) -> MainProgram:
    """Build the canonical SPLASH main: set up, fork, work, join, verify.

    ``setup(ctx)`` allocates and initialises shared state and returns
    it; ``shared_args(state)`` maps that state to the positional args
    each worker receives after its index; the main thread participates
    as worker 0 (as SPLASH mains do); ``teardown(ctx, state)`` verifies
    and may return the program result.
    """

    def main(ctx: ThreadContext):
        state = None
        if setup is not None:
            state = yield from setup(ctx)
        args = shared_args(state)
        threads = []
        for index in range(1, nthreads):
            thread = yield from ctx.spawn(worker, index, *args)
            threads.append(thread)
        yield from worker(ctx, 0, *args)
        yield from ctx.join_all(threads)
        if teardown is not None:
            result = yield from teardown(ctx, state)
            return result
        return None

    return main


def stream_touch(ctx: ThreadContext, base: int, count: int,
                 stride: int = 8, write: bool = False,
                 compute_per: int = 4):
    """Walk an array doing a load (and optionally a store) per element.

    The bread-and-butter inner loop of the streaming kernels: perfect
    spatial locality when ``stride`` equals the element size.
    """
    for i in range(count):
        address = base + i * stride
        value = yield from ctx.load_u64(address)
        if compute_per:
            yield from ctx.compute(compute_per)
        if write:
            yield from ctx.store_u64(address, (value * 2862933555777941757
                                               + 3037000493)
                                     & 0xFFFFFFFFFFFFFFFF)
