"""Black-Scholes option pricing (PARSEC ``blackscholes``).

The Figure 9 coherence-study workload.  Pattern fidelity:

* nearly perfectly parallel — each thread prices its own contiguous
  chunk of option records with a long floating-point kernel and writes
  only its own results;
* a small table of global constants (the paper observed heavily
  read-shared read-only addresses in system libraries) is read by
  *every* thread for *every* option.  Under a full-map or LimitLESS
  directory this costs one miss per thread; under Dir_iNB the sharer
  pointers thrash and every read turns into a protocol round trip —
  exactly the scaling collapse Figure 9 shows for Dir4NB/Dir16NB.
"""

from __future__ import annotations

import math

from repro.frontend.api import ThreadContext
from repro.workloads.base import WorkloadFactory, register_workload

#: One option record: spot, strike, rate, volatility, time, type, pad.
OPTION_BYTES = 64
_F64 = 8
#: Global constants table: 8 doubles (one cache line by default).
GLOBALS_DOUBLES = 8


def _cdf(x: float) -> float:
    """Abramowitz-Stegun style normal CDF (the actual PARSEC math)."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def _worker(ctx: ThreadContext, index: int, shared: dict):
    per = shared["options_per_thread"]
    options = shared["options"]
    prices = shared["prices"]
    globals_table = shared["globals"]
    barrier = shared["barrier"]
    nthreads = shared["nthreads"]
    my_first = index * per

    for i in range(my_first, my_first + per):
        record = options + i * OPTION_BYTES
        spot = yield from ctx.load_f64(record)
        strike = yield from ctx.load_f64(record + 8)
        # Read-only globals touched for every option (shared by all
        # threads; the Figure 9 differentiator between directories).
        rate = yield from ctx.load_f64(
            globals_table + (i % GLOBALS_DOUBLES) * _F64)
        volatility = yield from ctx.load_f64(
            globals_table + ((i + 1) % GLOBALS_DOUBLES) * _F64)
        # Math-library constant tables are hit on every exp/log/CNDF
        # call, interleaved with the floating-point work: under
        # full-map these hit in cache after the first fetch; under
        # Dir_iNB the sharer pointers thrash and every read becomes a
        # protocol round trip (the Figure 9 collapse).
        for step in range(8):
            yield from ctx.fp_compute(25)
            yield from ctx.load_f64(
                globals_table + ((i + step) % GLOBALS_DOUBLES) * _F64)
        sqrt_t = math.sqrt(1.0)
        d1 = (math.log(max(spot / strike, 1e-9))
              + (rate + 0.5 * volatility * volatility)) \
            / max(volatility * sqrt_t, 1e-9)
        d2 = d1 - volatility * sqrt_t
        price = spot * _cdf(d1) - strike * math.exp(-rate) * _cdf(d2)
        yield from ctx.store_f64(prices + i * _F64, price)
    yield from ctx.barrier(barrier, nthreads)


def build(nthreads: int, scale: float = 1.0, options: int = 0):
    if options <= 0:
        options = max(int(16 * nthreads * scale), nthreads)
    per = max(options // nthreads, 1)

    def main(ctx: ThreadContext):
        total = per * nthreads
        array = yield from ctx.malloc(total * OPTION_BYTES, align=64)
        prices = yield from ctx.calloc(total * _F64, align=64)
        globals_table = yield from ctx.malloc(
            GLOBALS_DOUBLES * _F64, align=64)
        barrier = yield from ctx.malloc(64, align=64)
        for g in range(GLOBALS_DOUBLES):
            yield from ctx.store_f64(globals_table + g * _F64,
                                     0.02 + 0.01 * g)
        for i in range(total):
            record = array + i * OPTION_BYTES
            yield from ctx.store_f64(record, 90.0 + (i % 21))
            yield from ctx.store_f64(record + 8, 100.0)
        shared = {
            "nthreads": nthreads,
            "options_per_thread": per,
            "options": array,
            "prices": prices,
            "globals": globals_table,
            "barrier": barrier,
        }
        threads = []
        for index in range(1, nthreads):
            thread = yield from ctx.spawn(_worker, index, shared)
            threads.append(thread)
        yield from _worker(ctx, 0, shared)
        yield from ctx.join_all(threads)
        first_price = yield from ctx.load_f64(prices)
        return first_price

    return main


register_workload(WorkloadFactory(
    name="blackscholes",
    build=build,
    description="option pricing with read-only broadcast globals",
    comm_intensity="very low",
))
