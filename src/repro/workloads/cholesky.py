"""Sparse Cholesky factorization (SPLASH-2 ``cholesky``).

Pattern fidelity: supernodal column tasks pulled from a shared,
lock-protected task queue (self-scheduling) — irregular parallelism
with lock contention and load imbalance, unlike the barrier-phased
kernels.  Each column task reads a dependency set of earlier columns
(remote, owner-varying) and writes its own column block.
"""

from __future__ import annotations

from repro.frontend.api import ThreadContext
from repro.workloads.base import WorkloadFactory, register_workload

_F64 = 8


def _worker(ctx: ThreadContext, index: int, shared: dict):
    nthreads = shared["nthreads"]
    columns = shared["columns"]
    column_height = shared["column_height"]
    matrix = shared["matrix"]
    queue_lock = shared["queue_lock"]
    next_task = shared["next_task"]
    barrier = shared["barrier"]

    def column_base(k: int) -> int:
        return matrix + k * column_height * _F64

    while True:
        # Self-scheduling: pop the next column index under the lock.
        yield from ctx.lock(queue_lock)
        k = yield from ctx.load_u64(next_task)
        if k < columns:
            yield from ctx.store_u64(next_task, k + 1)
        yield from ctx.unlock(queue_lock)
        if k >= columns:
            break

        # Read a (sparse) dependency set of earlier columns.
        dep = k
        deps_read = 0
        while dep > 0 and deps_read < 3:
            dep = (dep * 5) // 7  # pseudo-random earlier column
            base = column_base(dep)
            for r in range(0, column_height, 2):
                value = yield from ctx.load_f64(base + r * _F64)
                yield from ctx.fp_compute(100)
            deps_read += 1

        # Factor and write the own column.
        base = column_base(k)
        for r in range(column_height):
            value = yield from ctx.load_f64(base + r * _F64)
            yield from ctx.fp_compute(120)
            yield from ctx.store_f64(base + r * _F64, value * 0.5 + 1.0)
    yield from ctx.barrier(barrier, nthreads)


def build(nthreads: int, scale: float = 1.0, columns: int = 0,
          column_height: int = 24):
    if columns <= 0:
        columns = max(int(4 * nthreads * scale), nthreads)

    def main(ctx: ThreadContext):
        matrix = yield from ctx.calloc(columns * column_height * _F64,
                                       align=64)
        queue_lock = yield from ctx.calloc(8, align=64)
        next_task = yield from ctx.calloc(8, align=64)
        barrier = yield from ctx.malloc(64, align=64)
        shared = {
            "nthreads": nthreads,
            "columns": columns,
            "column_height": column_height,
            "matrix": matrix,
            "queue_lock": queue_lock,
            "next_task": next_task,
            "barrier": barrier,
        }
        threads = []
        for index in range(1, nthreads):
            thread = yield from ctx.spawn(_worker, index, shared)
            threads.append(thread)
        yield from _worker(ctx, 0, shared)
        yield from ctx.join_all(threads)
        done = yield from ctx.load_u64(next_task)
        return done == columns

    return main


register_workload(WorkloadFactory(
    name="cholesky",
    build=build,
    description="task-queue supernodal factorization",
    comm_intensity="medium (lock-bound)",
))
