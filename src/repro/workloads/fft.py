"""FFT kernel (SPLASH-2 ``fft``): six-step 1D FFT with all-to-all transpose.

Pattern fidelity:

* each thread owns a **contiguous** chunk of the complex data array, so
  local phases have perfect spatial locality — miss rates drop linearly
  with line size (Figure 8f);
* the transpose phase reads a block from *every other* thread's chunk
  (all-to-all communication) — the lowest computation-to-communication
  ratio in the suite, which is why fft shows the worst simulation
  speedup in Figure 4 and the largest slowdown in Table 2;
* phases are separated by global barriers.
"""

from __future__ import annotations

from repro.frontend.api import ThreadContext
from repro.workloads.base import WorkloadFactory, register_workload

_COMPLEX_BYTES = 16  # two f64: re, im


def _worker(ctx: ThreadContext, index: int, shared: dict):
    nthreads = shared["nthreads"]
    points_per_thread = shared["points_per_thread"]
    data = shared["data"]
    scratch = shared["scratch"]
    barrier = shared["barrier"]
    my_base = data + index * points_per_thread * _COMPLEX_BYTES
    my_scratch = scratch + index * points_per_thread * _COMPLEX_BYTES

    # Step 1: local butterflies over the owned chunk (streaming).
    for i in range(points_per_thread):
        address = my_base + i * _COMPLEX_BYTES
        re = yield from ctx.load_f64(address)
        im = yield from ctx.load_f64(address + 8)
        yield from ctx.fp_compute(60)
        yield from ctx.store_f64(address, re + im)
        yield from ctx.store_f64(address + 8, re - im)
    yield from ctx.barrier(barrier, nthreads)

    # Step 2: transpose — read a block from every thread's chunk.
    block = points_per_thread // nthreads
    cursor = my_scratch
    for other in range(nthreads):
        src_index = (index + other) % nthreads  # stagger to avoid hotspots
        other_base = (data
                      + src_index * points_per_thread * _COMPLEX_BYTES
                      + index * block * _COMPLEX_BYTES)
        for i in range(block):
            re = yield from ctx.load_f64(other_base + i * _COMPLEX_BYTES)
            im = yield from ctx.load_f64(other_base + i * _COMPLEX_BYTES + 8)
            yield from ctx.fp_compute(20)
            yield from ctx.store_f64(cursor, re)
            yield from ctx.store_f64(cursor + 8, im)
            cursor += _COMPLEX_BYTES
    yield from ctx.barrier(barrier + 64, nthreads)

    # Step 3: second local butterfly pass over the transposed data.
    for i in range(points_per_thread):
        address = my_scratch + i * _COMPLEX_BYTES
        re = yield from ctx.load_f64(address)
        yield from ctx.fp_compute(60)
        yield from ctx.store_f64(address, re * 0.5)
    yield from ctx.barrier(barrier + 128, nthreads)


def _setup(ctx: ThreadContext, nthreads: int, total_points: int):
    data = yield from ctx.malloc(total_points * _COMPLEX_BYTES, align=64)
    scratch = yield from ctx.malloc(total_points * _COMPLEX_BYTES, align=64)
    barrier = yield from ctx.malloc(256, align=64)
    # Initialise the owned data (main writes everything; later phases
    # re-distribute ownership through the coherence protocol).
    per = total_points // nthreads
    for i in range(0, total_points, max(per // 8, 1)):
        yield from ctx.store_f64(data + i * _COMPLEX_BYTES, float(i % 97))
        yield from ctx.store_f64(data + i * _COMPLEX_BYTES + 8, 1.0)
    return {
        "nthreads": nthreads,
        "points_per_thread": per,
        "data": data,
        "scratch": scratch,
        "barrier": barrier,
    }


def build(nthreads: int, scale: float = 1.0, points: int = 0):
    """Main program factory; ``points`` overrides the scaled default."""
    if points <= 0:
        points = max(int(256 * nthreads * scale), 4 * nthreads * nthreads)
    # points_per_thread must be divisible by nthreads for the transpose.
    per = max((points // nthreads // nthreads) * nthreads, nthreads)
    total = per * nthreads

    def main(ctx: ThreadContext):
        shared = yield from _setup(ctx, nthreads, total)
        threads = []
        for index in range(1, nthreads):
            thread = yield from ctx.spawn(_worker, index, shared)
            threads.append(thread)
        yield from _worker(ctx, 0, shared)
        yield from ctx.join_all(threads)
        checksum = yield from ctx.load_f64(shared["scratch"])
        return checksum

    return main


register_workload(WorkloadFactory(
    name="fft",
    build=build,
    description="1D FFT with all-to-all inter-thread transpose",
    comm_intensity="very high",
))
