"""Fast multipole method (SPLASH-2 ``fmm``).

Pattern fidelity: the highest computation-to-communication ratio in the
suite.  Each thread owns a set of cells with multipole expansions; the
upward and downward passes are long floating-point loops over *owned*
data, and only the interaction-list phase reads a handful of other
threads' expansion records.  This is why fmm parallelises almost
ideally in Figure 4 and reaches the paper's best slowdown (41x on
8 machines, Table 2).
"""

from __future__ import annotations

from repro.frontend.api import ThreadContext
from repro.workloads.base import WorkloadFactory, register_workload

#: One cell: 8 expansion coefficients (f64).
CELL_BYTES = 64
_F64 = 8


def _cell(base: int, i: int) -> int:
    return base + i * CELL_BYTES


def _worker(ctx: ThreadContext, index: int, shared: dict):
    nthreads = shared["nthreads"]
    per = shared["cells_per_thread"]
    cells = shared["cells"]
    barrier = shared["barrier"]
    compute_per_term = shared["compute_per_term"]
    my_first = index * per

    # Upward pass: build expansions of owned cells (compute-heavy).
    for i in range(my_first, my_first + per):
        for term in range(8):
            address = _cell(cells, i) + term * _F64
            value = yield from ctx.load_f64(address)
            yield from ctx.fp_compute(compute_per_term)
            yield from ctx.store_f64(address, value + 1.0 / (term + 1))
    yield from ctx.barrier(barrier, nthreads)

    # Interaction lists: read a few remote cells' expansions.
    interactions = max(per // 2, 1)
    total = per * nthreads
    for i in range(interactions):
        remote = (my_first + per + i * 13) % total
        for term in range(0, 8, 2):
            value = yield from ctx.load_f64(_cell(cells, remote)
                                            + term * _F64)
            yield from ctx.fp_compute(compute_per_term)
    yield from ctx.barrier(barrier + 64, nthreads)

    # Downward pass: evaluate local expansions (compute-heavy, local).
    for i in range(my_first, my_first + per):
        accumulated = 0.0
        for term in range(8):
            value = yield from ctx.load_f64(_cell(cells, i)
                                            + term * _F64)
            yield from ctx.fp_compute(compute_per_term)
            accumulated += value / (term + 1)
        yield from ctx.store_f64(_cell(cells, i), accumulated)
    yield from ctx.barrier(barrier + 128, nthreads)


def build(nthreads: int, scale: float = 1.0, cells: int = 0,
          compute_per_term: int = 600):
    if cells <= 0:
        cells = max(int(24 * nthreads * scale), nthreads)
    per = max(cells // nthreads, 1)

    def main(ctx: ThreadContext):
        total = per * nthreads
        array = yield from ctx.calloc(total * CELL_BYTES, align=64)
        barrier = yield from ctx.malloc(256, align=64)
        shared = {
            "nthreads": nthreads,
            "cells_per_thread": per,
            "cells": array,
            "barrier": barrier,
            "compute_per_term": compute_per_term,
        }
        threads = []
        for index in range(1, nthreads):
            thread = yield from ctx.spawn(_worker, index, shared)
            threads.append(thread)
        yield from _worker(ctx, 0, shared)
        yield from ctx.join_all(threads)
        value = yield from ctx.load_f64(array)
        return value

    return main


register_workload(WorkloadFactory(
    name="fmm",
    build=build,
    description="fast multipole method, compute-dominated",
    comm_intensity="very low",
))
