"""Blocked LU factorization (SPLASH-2 ``lu_cont`` / ``lu_non_cont``).

Pattern fidelity:

* the matrix is factored in B x B blocks with a 2D-cyclic block-to-
  thread ownership, step-wise: diagonal block, then perimeter, then
  interior updates, with global barriers between phases;
* **contiguous** variant: every block is allocated as its own dense
  B*B array, so a thread streams through whole cache lines of its own
  and the pivot blocks — perfect spatial locality; miss rates fall
  linearly with line size (Figure 8b);
* **non-contiguous** variant: one row-major n x n array, so a block's
  rows are strided and lines at block boundaries are shared between
  neighbouring blocks' owners — extra misses and false sharing, the
  reason ``lu_non_cont`` behaves worse in Table 2.
"""

from __future__ import annotations

from repro.frontend.api import ThreadContext
from repro.workloads.base import WorkloadFactory, register_workload

_F64 = 8


class _Layout:
    """Address arithmetic for the two matrix layouts."""

    def __init__(self, base: int, n: int, block: int,
                 contiguous: bool) -> None:
        self.base = base
        self.n = n
        self.block = block
        self.contiguous = contiguous
        self.blocks_per_side = n // block

    def element(self, bi: int, bj: int, r: int, c: int) -> int:
        """Address of element (r, c) inside block (bi, bj)."""
        if self.contiguous:
            block_index = bi * self.blocks_per_side + bj
            offset = block_index * self.block * self.block + \
                r * self.block + c
        else:
            row = bi * self.block + r
            col = bj * self.block + c
            offset = row * self.n + col
        return self.base + offset * _F64


def _owner(bi: int, bj: int, blocks_per_side: int, nthreads: int) -> int:
    """2D-cyclic block ownership, as SPLASH-2 LU distributes blocks."""
    return (bi * blocks_per_side + bj) % nthreads


def _touch_block(ctx: ThreadContext, layout: _Layout, bi: int, bj: int,
                 write: bool, sample: int):
    """Stream over a block (every ``sample``-th element), load/compute/store."""
    for r in range(layout.block):
        for c in range(0, layout.block, sample):
            address = layout.element(bi, bj, r, c)
            value = yield from ctx.load_f64(address)
            yield from ctx.fp_compute(80)
            if write:
                yield from ctx.store_f64(address, value * 0.99 + 1.0)


def _worker(ctx: ThreadContext, index: int, shared: dict):
    layout: _Layout = shared["layout"]
    nthreads = shared["nthreads"]
    barrier = shared["barrier"]
    sample = shared["sample"]
    nb = layout.blocks_per_side

    for k in range(nb):
        # Phase 1: factor the diagonal block (its owner only).
        if _owner(k, k, nb, nthreads) == index:
            yield from _touch_block(ctx, layout, k, k, True, sample)
        yield from ctx.barrier(barrier, nthreads)
        # Phase 2: perimeter updates read the (remote) diagonal block.
        for j in range(k + 1, nb):
            if _owner(k, j, nb, nthreads) == index:
                yield from _touch_block(ctx, layout, k, k, False, sample)
                yield from _touch_block(ctx, layout, k, j, True, sample)
            if _owner(j, k, nb, nthreads) == index:
                yield from _touch_block(ctx, layout, k, k, False, sample)
                yield from _touch_block(ctx, layout, j, k, True, sample)
        yield from ctx.barrier(barrier + 64, nthreads)
        # Phase 3: interior updates read two remote perimeter blocks.
        for i in range(k + 1, nb):
            for j in range(k + 1, nb):
                if _owner(i, j, nb, nthreads) == index:
                    yield from _touch_block(ctx, layout, i, k, False,
                                            sample)
                    yield from _touch_block(ctx, layout, k, j, False,
                                            sample)
                    yield from _touch_block(ctx, layout, i, j, True,
                                            sample)
        yield from ctx.barrier(barrier + 128, nthreads)


def _build(contiguous: bool):
    def build(nthreads: int, scale: float = 1.0, n: int = 0,
              block: int = 16, sample: int = 4):
        if n <= 0:
            n = max(int(24 * scale * nthreads ** 0.5), block * 2)
        n = max((n // block) * block, block * 2)

        def main(ctx: ThreadContext):
            base = yield from ctx.malloc(n * n * _F64, align=64)
            barrier = yield from ctx.malloc(256, align=64)
            layout = _Layout(base, n, block, contiguous)
            # Initialise the diagonal so factorisation reads real data.
            for d in range(0, n, block):
                yield from ctx.store_f64(layout.element(
                    d // block, d // block, 0, 0), float(d + 1))
            shared = {
                "layout": layout,
                "nthreads": nthreads,
                "barrier": barrier,
                "sample": max(sample, 1),
            }
            threads = []
            for index in range(1, nthreads):
                thread = yield from ctx.spawn(_worker, index, shared)
                threads.append(thread)
            yield from _worker(ctx, 0, shared)
            yield from ctx.join_all(threads)
            result = yield from ctx.load_f64(layout.element(0, 0, 0, 0))
            return result

        return main

    return build


register_workload(WorkloadFactory(
    name="lu_cont",
    build=_build(contiguous=True),
    description="blocked LU, contiguous block allocation",
    comm_intensity="medium",
))

register_workload(WorkloadFactory(
    name="lu_non_cont",
    build=_build(contiguous=False),
    description="blocked LU, strided row-major allocation",
    comm_intensity="medium-high",
))
