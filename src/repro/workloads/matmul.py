"""Blocked matrix multiply — the paper's 1024-thread scaling kernel.

Figure 5 runs ``matrix-multiply`` with 1024 worker threads on 1024
target tiles: it "scales well to large numbers of threads, while still
having frequent synchronization via messages with neighbors"
(paper §4.2).  Each thread computes one block of C from shared A and B,
and after every middle-loop step exchanges a small message with its
ring neighbours — the messaging API exercise.
"""

from __future__ import annotations

from repro.common.ids import ThreadId
from repro.frontend.api import ThreadContext
from repro.workloads.base import WorkloadFactory, register_workload

_F64 = 8


def _worker(ctx: ThreadContext, index: int, shared: dict):
    nthreads = shared["nthreads"]
    block = shared["block"]
    steps = shared["steps"]
    a = shared["a"]
    b = shared["b"]
    c = shared["c"]
    barrier = shared["barrier"]
    stride = shared["block_stride"]  # line-padded: no false sharing
    my_c = c + index * stride

    right = ThreadId((index + 1) % nthreads)
    left = ThreadId((index - 1) % nthreads)

    # Parallel initialisation: each thread zeroes its own slice of A, B
    # and C (the SPLASH codes initialise in parallel; a serial memset by
    # the main thread would dominate at 1024 threads).
    for base in (a + index * stride, b + index * stride, my_c):
        yield from ctx.memset(base, 0, block * block * _F64)
    yield from ctx.store_f64(a + index * stride, 1.0 + index)
    yield from ctx.store_f64(b + index * stride, 2.0)
    yield from ctx.barrier(barrier + 64, nthreads)

    for k in range(steps):
        # Partial product: stream a row-block of A and a column-block
        # of B (both shared, read-only here) into the owned C block.
        a_base = a + ((index + k) % nthreads) * stride
        b_base = b + ((index * 7 + k) % nthreads) * stride
        for i in range(block):
            for j in range(block):
                x = yield from ctx.load_f64(a_base + (i * block + j) * _F64)
                y = yield from ctx.load_f64(b_base + (j * block + i) * _F64)
                yield from ctx.fp_compute(150)
                address = my_c + (i * block + j) * _F64
                acc = yield from ctx.load_f64(address)
                yield from ctx.store_f64(address, acc + x * y)
        # Neighbour synchronization: pass a token around the ring.
        if nthreads > 1:
            yield from ctx.send_u64(right, k, tag=k)
            _, token = yield from ctx.recv_u64(src=left, tag=k)
            yield from ctx.compute(int(token % 7) + 1)
    yield from ctx.barrier(barrier, nthreads)


def build(nthreads: int, scale: float = 1.0, block: int = 0,
          steps: int = 2):
    if block <= 0:
        block = max(int(4 * scale), 2)

    def main(ctx: ThreadContext):
        # Pad each thread's block to a cache-line multiple, as the
        # SPLASH codes do: unpadded blocks share boundary lines and the
        # resulting write ping-pong serializes neighbouring threads.
        per_block = ((block * block * _F64 + 63) // 64) * 64
        a = yield from ctx.malloc(nthreads * per_block, align=64)
        b = yield from ctx.malloc(nthreads * per_block, align=64)
        c = yield from ctx.malloc(nthreads * per_block, align=64)
        barrier = yield from ctx.malloc(128, align=64)
        shared = {
            "nthreads": nthreads,
            "block": block,
            "block_stride": per_block,
            "steps": steps,
            "a": a, "b": b, "c": c,
            "barrier": barrier,
        }
        threads = []
        for index in range(1, nthreads):
            thread = yield from ctx.spawn(_worker, index, shared)
            threads.append(thread)
        yield from _worker(ctx, 0, shared)
        yield from ctx.join_all(threads)
        value = yield from ctx.load_f64(c)
        return value

    return main


register_workload(WorkloadFactory(
    name="matrix_multiply",
    build=build,
    description="blocked matmul with ring-neighbour messages",
    comm_intensity="medium (messages)",
))
