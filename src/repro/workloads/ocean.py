"""Ocean current simulation (SPLASH-2 ``ocean_cont`` / ``ocean_non_cont``).

A 5-point stencil relaxation over a 2D grid, iterated with global
barriers.  Pattern fidelity:

* **contiguous** variant: each thread's partition is separately
  allocated (SPLASH's "4D array" trick), so sweeps stream through whole
  cache lines; only partition *boundary rows* are read by the
  neighbouring thread — true sharing that shrinks as line size grows
  (Figure 8g);
* **non-contiguous** variant: one row-major grid partitioned by
  *columns*, so every element a thread touches sits on a line it shares
  with its horizontal neighbours — strided access, many more misses and
  boundary false sharing;
* nearest-neighbour communication only, so ocean scales well with added
  host machines (Figure 4).
"""

from __future__ import annotations

from repro.frontend.api import ThreadContext
from repro.workloads.base import WorkloadFactory, register_workload

_F64 = 8


def _worker_cont(ctx: ThreadContext, index: int, shared: dict):
    nthreads = shared["nthreads"]
    n = shared["n"]
    rows = shared["rows_per_thread"]
    grids = shared["grids"]      # grids[phase][thread] strip bases
    barrier = shared["barrier"]
    iterations = shared["iterations"]

    def element(phase: int, thread: int, r: int, c: int) -> int:
        return grids[phase][thread] + (r * n + c) * _F64

    for it in range(iterations):
        src, dst = it % 2, (it + 1) % 2
        for r in range(rows):
            for c in range(1, n - 1):
                centre = yield from ctx.load_f64(element(src, index, r, c))
                left = yield from ctx.load_f64(element(src, index, r, c - 1))
                right = yield from ctx.load_f64(element(src, index, r, c + 1))
                if r > 0:
                    up = yield from ctx.load_f64(
                        element(src, index, r - 1, c))
                elif index > 0:
                    up = yield from ctx.load_f64(
                        element(src, index - 1, rows - 1, c))
                else:
                    up = 0.0
                if r < rows - 1:
                    down = yield from ctx.load_f64(
                        element(src, index, r + 1, c))
                elif index < nthreads - 1:
                    down = yield from ctx.load_f64(
                        element(src, index + 1, 0, c))
                else:
                    down = 0.0
                yield from ctx.fp_compute(120)
                yield from ctx.store_f64(
                    element(dst, index, r, c),
                    0.2 * (centre + left + right + up + down))
        yield from ctx.barrier(barrier + 64 * it, nthreads)


def _worker_non_cont(ctx: ThreadContext, index: int, shared: dict):
    nthreads = shared["nthreads"]
    n = shared["n"]
    cols = shared["cols_per_thread"]
    grids = shared["grids"]      # grids[phase] single row-major bases
    barrier = shared["barrier"]
    iterations = shared["iterations"]
    col0 = index * cols

    def element(phase: int, r: int, c: int) -> int:
        return grids[phase] + (r * n + c) * _F64

    for it in range(iterations):
        src, dst = it % 2, (it + 1) % 2
        for r in range(1, n - 1):
            for c in range(col0, col0 + cols):
                centre = yield from ctx.load_f64(element(src, r, c))
                up = yield from ctx.load_f64(element(src, r - 1, c))
                down = yield from ctx.load_f64(element(src, r + 1, c))
                left = (yield from ctx.load_f64(element(src, r, c - 1))) \
                    if c > 0 else 0.0
                right = (yield from ctx.load_f64(element(src, r, c + 1))) \
                    if c < n - 1 else 0.0
                yield from ctx.fp_compute(120)
                yield from ctx.store_f64(
                    element(dst, r, c),
                    0.2 * (centre + up + down + left + right))
        yield from ctx.barrier(barrier + 64 * it, nthreads)


def _build(contiguous: bool):
    def build(nthreads: int, scale: float = 1.0, n: int = 0,
              iterations: int = 2):
        if n <= 0:
            n = max(int(24 * scale * (nthreads ** 0.5)), 2 * nthreads)

        def main(ctx: ThreadContext):
            barrier = yield from ctx.malloc(
                64 * max(iterations, 1) + 64, align=64)
            if contiguous:
                rows = max(n // nthreads, 1)
                grids = [[0] * nthreads, [0] * nthreads]
                for phase in range(2):
                    for t in range(nthreads):
                        strip = yield from ctx.malloc(rows * n * _F64,
                                                      align=64)
                        grids[phase][t] = strip
                # Seed one value per strip so the stencil reads real data.
                for t in range(nthreads):
                    yield from ctx.store_f64(grids[0][t], float(t + 1))
                shared = {
                    "nthreads": nthreads, "n": n,
                    "rows_per_thread": rows, "grids": grids,
                    "barrier": barrier, "iterations": iterations,
                }
                worker = _worker_cont
            else:
                cols = max(n // nthreads, 1)
                g0 = yield from ctx.malloc(n * n * _F64, align=64)
                g1 = yield from ctx.malloc(n * n * _F64, align=64)
                yield from ctx.store_f64(g0, 1.0)
                shared = {
                    "nthreads": nthreads, "n": n,
                    "cols_per_thread": cols, "grids": [g0, g1],
                    "barrier": barrier, "iterations": iterations,
                }
                worker = _worker_non_cont
            threads = []
            for index in range(1, nthreads):
                thread = yield from ctx.spawn(worker, index, shared)
                threads.append(thread)
            yield from worker(ctx, 0, shared)
            yield from ctx.join_all(threads)
            return True

        return main

    return build


register_workload(WorkloadFactory(
    name="ocean_cont",
    build=_build(contiguous=True),
    description="stencil relaxation, separately allocated partitions",
    comm_intensity="low-medium",
))

register_workload(WorkloadFactory(
    name="ocean_non_cont",
    build=_build(contiguous=False),
    description="stencil relaxation, strided column partitions",
    comm_intensity="medium",
))
