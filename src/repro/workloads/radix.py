"""Parallel radix sort (SPLASH-2 ``radix``).

Pattern fidelity:

* each thread histograms its **contiguous** chunk of keys (streaming
  reads — miss rate drops with line size);
* per-thread histogram columns are written into one global
  ``hist[digit][thread]`` array whose rows interleave different
  threads' slots at 8-byte granularity;
* the permutation phase writes each key to a shared global output
  array at positions interleaved between threads with a granularity of
  roughly ``n / (radix * threads)`` keys.  When the cache line grows
  past that granularity, multiple threads write the same lines and the
  false-sharing miss rate blows up — the Figure 8d signature at 256 B;
* a serial prefix-sum step on thread 0 between barriers (as in the
  SPLASH tree-summed version's final pass).
"""

from __future__ import annotations

from repro.frontend.api import ThreadContext
from repro.workloads.base import WorkloadFactory, register_workload

_U64 = 8


def _worker(ctx: ThreadContext, index: int, shared: dict):
    nthreads = shared["nthreads"]
    per = shared["keys_per_thread"]
    radix = shared["radix"]
    keys_in = shared["keys_in"]
    keys_out = shared["keys_out"]
    hist = shared["hist"]        # [digit][thread] of u64
    offsets = shared["offsets"]  # [digit][thread] of u64
    barrier = shared["barrier"]
    my_keys = keys_in + index * per * _U64

    # Phase 1: local histogram over the owned chunk.
    local_hist = [0] * radix
    for i in range(per):
        key = yield from ctx.load_u64(my_keys + i * _U64)
        local_hist[key % radix] += 1
        yield from ctx.compute(100)
    # Publish the column: hist[d][index] — neighbours' slots share
    # lines once lines exceed 8 * threads bytes.
    for digit in range(radix):
        slot = hist + (digit * nthreads + index) * _U64
        yield from ctx.store_u64(slot, local_hist[digit])
    yield from ctx.barrier(barrier, nthreads)

    # Phase 2a: tree-style parallel prefix (as SPLASH-2 radix does).
    # Each thread owns a contiguous digit range: it computes the
    # within-range running offsets and publishes its range total.
    digits_per_thread = max(radix // nthreads, 1)
    first_digit = index * digits_per_thread
    my_digits = range(first_digit,
                      min(first_digit + digits_per_thread, radix))
    running = 0
    for digit in my_digits:
        for t in range(nthreads):
            slot = hist + (digit * nthreads + t) * _U64
            count = yield from ctx.load_u64(slot)
            dst = offsets + (digit * nthreads + t) * _U64
            yield from ctx.store_u64(dst, running)
            running += count
            yield from ctx.compute(4)
    totals = shared["range_totals"]
    yield from ctx.store_u64(totals + index * _U64, running)
    yield from ctx.barrier(barrier + 192, nthreads)
    # Phase 2b: thread 0 prefixes the per-range totals (tiny serial).
    if index == 0:
        base = 0
        for t in range(nthreads):
            total = yield from ctx.load_u64(totals + t * _U64)
            yield from ctx.store_u64(totals + t * _U64, base)
            base += total
    yield from ctx.barrier(barrier + 64, nthreads)
    # Phase 2c: each thread rebases its digit range's offsets.
    my_base = yield from ctx.load_u64(totals + index * _U64)
    if my_base:
        for digit in my_digits:
            for t in range(nthreads):
                dst = offsets + (digit * nthreads + t) * _U64
                value = yield from ctx.load_u64(dst)
                yield from ctx.store_u64(dst, value + my_base)
    yield from ctx.barrier(barrier + 256, nthreads)

    # Phase 3: permutation into the shared output array.
    my_offsets = [0] * radix
    for digit in range(radix):
        slot = offsets + (digit * nthreads + index) * _U64
        my_offsets[digit] = yield from ctx.load_u64(slot)
    for i in range(per):
        key = yield from ctx.load_u64(my_keys + i * _U64)
        digit = key % radix
        position = my_offsets[digit]
        my_offsets[digit] += 1
        yield from ctx.store_u64(keys_out + position * _U64, key)
        yield from ctx.compute(80)
    yield from ctx.barrier(barrier + 128, nthreads)


def build(nthreads: int, scale: float = 1.0, keys: int = 0,
          radix: int = 32):
    if keys <= 0:
        keys = max(int(1024 * nthreads * scale), 64 * nthreads)
    per = max(keys // nthreads, 1)
    total = per * nthreads

    def main(ctx: ThreadContext):
        keys_in = yield from ctx.malloc(total * _U64, align=64)
        keys_out = yield from ctx.malloc(total * _U64, align=64)
        hist = yield from ctx.calloc(radix * nthreads * _U64, align=64)
        offsets = yield from ctx.calloc(radix * nthreads * _U64, align=64)
        range_totals = yield from ctx.calloc(nthreads * _U64, align=64)
        barrier = yield from ctx.malloc(320, align=64)
        # Pseudo-random keys, written sequentially (spatial locality).
        state = 0x9E3779B97F4A7C15
        for i in range(total):
            state = (state * 6364136223846793005 + 1442695040888963407) \
                & 0xFFFFFFFFFFFFFFFF
            yield from ctx.store_u64(keys_in + i * _U64, state >> 16)
        shared = {
            "nthreads": nthreads,
            "keys_per_thread": per,
            "radix": radix,
            "keys_in": keys_in,
            "keys_out": keys_out,
            "hist": hist,
            "offsets": offsets,
            "range_totals": range_totals,
            "barrier": barrier,
        }
        threads = []
        for index in range(1, nthreads):
            thread = yield from ctx.spawn(_worker, index, shared)
            threads.append(thread)
        yield from _worker(ctx, 0, shared)
        yield from ctx.join_all(threads)
        # Verify: sample the output and check digits are non-decreasing.
        previous = -1
        ok = True
        step = max(total // 64, 1)
        for i in range(0, total, step):
            key = yield from ctx.load_u64(keys_out + i * _U64)
            digit = key % radix
            if digit < previous:
                ok = False
            previous = digit
        return ok

    return main


register_workload(WorkloadFactory(
    name="radix",
    build=build,
    description="radix sort with globally interleaved permutation writes",
    comm_intensity="high",
))
