"""Molecular dynamics (SPLASH-2 ``water_nsquared`` / ``water_spatial``).

Molecules are fixed-size records in one shared array, each *owned* by
one thread (contiguous chunks).  A thread may write any record it owns
and read position fields of records it does not — the record-grained
sharing whose signature Figure 8c shows: true-sharing misses decrease
with line size (one miss fetches more of a record) while false-sharing
misses increase (one line spans several differently-owned records).

* ``water_nsquared``: every thread's molecules interact with *all*
  molecules (O(n^2) pair loop); inter-molecule force updates write the
  *other* molecule's force field under its per-molecule lock.  The lock
  and remote-write traffic is why n-squared gains nothing from extra
  machines in Table 2;
* ``water_spatial``: molecules interact only with a neighbourhood of
  cells, so remote reads touch just the two adjacent threads' chunks —
  far less communication, hence the better Table 2 slowdown.
"""

from __future__ import annotations

from repro.frontend.api import ThreadContext
from repro.workloads.base import WorkloadFactory, register_workload

#: Record layout: 3 position + 3 velocity + 2 force doubles = 64 bytes.
RECORD_BYTES = 64
_POS = 0        # offsets of fields within a record
_FORCE = 48


def _record(base: int, index: int) -> int:
    return base + index * RECORD_BYTES


def _worker_nsquared(ctx: ThreadContext, index: int, shared: dict):
    nthreads = shared["nthreads"]
    per = shared["molecules_per_thread"]
    total = per * nthreads
    molecules = shared["molecules"]
    locks = shared["locks"]
    barrier = shared["barrier"]
    lock_every = shared["lock_every"]
    my_first = index * per

    # Force computation: all pairs (i in mine, j in everyone).
    for i in range(my_first, my_first + per):
        my_pos = yield from ctx.load_f64(_record(molecules, i) + _POS)
        accumulated = 0.0
        for j in range(total):
            if j == i:
                continue
            other_pos = yield from ctx.load_f64(
                _record(molecules, j) + _POS)
            yield from ctx.fp_compute(200)
            accumulated += other_pos - my_pos
            if j % lock_every == index % lock_every:
                # Symmetric force update into the *other* molecule,
                # guarded by its lock (SPLASH's inter-molecule forces).
                yield from ctx.lock(locks + j * 8)
                force = yield from ctx.load_f64(
                    _record(molecules, j) + _FORCE)
                yield from ctx.store_f64(
                    _record(molecules, j) + _FORCE, force + 0.001)
                yield from ctx.unlock(locks + j * 8)
        yield from ctx.store_f64(_record(molecules, i) + _FORCE,
                                 accumulated)
    yield from ctx.barrier(barrier, nthreads)

    # Update phase: integrate owned molecules (local writes only).
    for i in range(my_first, my_first + per):
        force = yield from ctx.load_f64(_record(molecules, i) + _FORCE)
        yield from ctx.fp_compute(150)
        yield from ctx.store_f64(_record(molecules, i) + _POS,
                                 force * 0.01)
    yield from ctx.barrier(barrier + 64, nthreads)


def _worker_spatial(ctx: ThreadContext, index: int, shared: dict):
    nthreads = shared["nthreads"]
    per = shared["molecules_per_thread"]
    molecules = shared["molecules"]
    barrier = shared["barrier"]
    iterations = shared["iterations"]
    my_first = index * per
    # Neighbourhood: own chunk plus a boundary band of the two adjacent
    # threads' chunks (spatial cell decomposition).
    band = max(per // 4, 1)
    neighbours = []
    if index > 0:
        neighbours.extend(range(my_first - band, my_first))
    if index < nthreads - 1:
        neighbours.extend(range(my_first + per, my_first + per + band))

    for it in range(iterations):
        for i in range(my_first, my_first + per):
            my_pos = yield from ctx.load_f64(_record(molecules, i) + _POS)
            accumulated = 0.0
            # Intra-cell interactions (own records, cached after first
            # pass of each timestep).
            for j in range(my_first, my_first + per):
                if j == i:
                    continue
                other = yield from ctx.load_f64(
                    _record(molecules, j) + _POS)
                yield from ctx.fp_compute(200)
                accumulated += other - my_pos
            # Boundary interactions: neighbours' records, re-read every
            # timestep after their owners updated them (true sharing at
            # small lines, false sharing once lines span records).
            for j in neighbours:
                other = yield from ctx.load_f64(
                    _record(molecules, j) + _POS)
                yield from ctx.fp_compute(200)
                accumulated += other - my_pos
            yield from ctx.store_f64(_record(molecules, i) + _FORCE,
                                     accumulated)
        yield from ctx.barrier(barrier + 128 * it, nthreads)
        for i in range(my_first, my_first + per):
            force = yield from ctx.load_f64(_record(molecules, i)
                                            + _FORCE)
            yield from ctx.fp_compute(150)
            yield from ctx.store_f64(_record(molecules, i) + _POS,
                                     force * 0.01)
        yield from ctx.barrier(barrier + 128 * it + 64, nthreads)


def _build(spatial: bool):
    def build(nthreads: int, scale: float = 1.0, molecules: int = 0,
              lock_every: int = 16, iterations: int = 1):
        if molecules <= 0:
            base_count = 14 if spatial else 8
            molecules = max(int(base_count * nthreads * scale),
                            2 * nthreads)
        per = max(molecules // nthreads, 2)

        def main(ctx: ThreadContext):
            total = per * nthreads
            array = yield from ctx.malloc(total * RECORD_BYTES, align=64)
            locks = yield from ctx.calloc(total * 8, align=64)
            barrier = yield from ctx.malloc(
                128 * max(iterations, 2) + 64, align=64)
            for i in range(total):
                yield from ctx.store_f64(_record(array, i) + _POS,
                                         float(i % 13) * 0.1)
            shared = {
                "nthreads": nthreads,
                "molecules_per_thread": per,
                "molecules": array,
                "locks": locks,
                "barrier": barrier,
                "lock_every": max(lock_every, 1),
                "iterations": max(iterations, 1),
            }
            worker = _worker_spatial if spatial else _worker_nsquared
            threads = []
            for index in range(1, nthreads):
                thread = yield from ctx.spawn(worker, index, shared)
                threads.append(thread)
            yield from worker(ctx, 0, shared)
            yield from ctx.join_all(threads)
            force = yield from ctx.load_f64(_record(array, 0) + _POS)
            return force

        return main

    return build


register_workload(WorkloadFactory(
    name="water_nsquared",
    build=_build(spatial=False),
    description="O(n^2) molecular dynamics with per-molecule locks",
    comm_intensity="high (locks)",
))

register_workload(WorkloadFactory(
    name="water_spatial",
    build=_build(spatial=True),
    description="cell-decomposed molecular dynamics",
    comm_intensity="low",
))
