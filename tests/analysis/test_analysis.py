"""Analysis helpers: metrics, tables, figure rendering."""

import pytest

from repro.analysis.figures import render_series, render_skew_trace
from repro.analysis.metrics import (
    geometric_mean,
    mean,
    median,
    miss_rate_breakdown,
    normalize,
    slowdown,
    speedup_series,
)
from repro.analysis.tables import Table


class TestMetrics:
    def test_speedup_series_normalized_to_first(self):
        assert speedup_series([10.0, 5.0, 2.5]) == \
            pytest.approx([1.0, 2.0, 4.0])

    def test_speedup_requires_positive_base(self):
        with pytest.raises(ValueError):
            speedup_series([0.0, 1.0])

    def test_normalize(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]

    def test_slowdown(self):
        assert slowdown(600.0, 1.0) == 600.0
        assert slowdown(1.0, 0.0) == float("inf")

    def test_median_even_odd(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_miss_rate_breakdown(self):
        rates = miss_rate_breakdown({"cold": 10, "capacity": 20}, 1000)
        assert rates == {"cold": 0.01, "capacity": 0.02}

    def test_miss_rate_zero_accesses(self):
        assert miss_rate_breakdown({"cold": 10}, 0) == {"cold": 0.0}


class TestTable:
    def test_render_contains_all_cells(self):
        table = Table("Table 2: Slowdowns", ["app", "native", "slowdown"])
        table.add_row("fft", 0.02, 3930)
        table.add_row("fmm", 7.11, 41)
        text = table.render()
        assert "Table 2" in text
        assert "fft" in text and "3930" in text
        assert "fmm" in text and "41" in text

    def test_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        table = Table("t", ["v"])
        table.add_row(0.12345)
        table.add_row(12.345)
        text = table.render()
        assert "0.1235" in text  # small floats keep 4 decimals
        assert "12.35" in text   # medium floats keep 2

    def test_columns_aligned(self):
        table = Table("t", ["name", "value"])
        table.add_row("x", 1)
        table.add_row("longer", 100)
        lines = table.render().splitlines()
        assert len(lines[-1]) == len(lines[-2])


class TestFigures:
    def test_render_series_shape(self):
        text = render_series("Figure 4", [1, 2, 4],
                             {"fft": [1.0, 1.5, 2.0],
                              "radix": [1.0, 3.0, 9.0]})
        assert "Figure 4" in text
        assert "radix" in text
        assert text.count("|") == 6  # one bar per point

    def test_render_series_arity_check(self):
        with pytest.raises(ValueError):
            render_series("f", [1, 2], {"a": [1.0]})

    def test_render_skew_trace(self):
        trace = [(float(i * 100), 50.0, -50.0) for i in range(100)]
        text = render_skew_trace("Figure 7a", trace)
        assert "Figure 7a" in text
        assert "peak |skew|" in text

    def test_render_skew_empty(self):
        assert "no samples" in render_skew_trace("f", [])
