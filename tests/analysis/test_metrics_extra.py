"""Additional analysis coverage: skew rendering, normalization edges."""

import pytest

from repro.analysis.figures import render_series, render_skew_trace
from repro.analysis.metrics import normalize


class TestNormalizeEdges:
    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)

    def test_empty_sequence(self):
        assert normalize([], 2.0) == []


class TestRenderSeries:
    def test_single_point(self):
        text = render_series("t", ["x"], {"s": [1.0]})
        assert "x" in text and "1.000" in text

    def test_all_zero_values(self):
        text = render_series("t", [1, 2], {"s": [0.0, 0.0]})
        assert text.count("|") == 2  # bars render (empty) without crash

    def test_negative_values_render(self):
        text = render_series("t", [1], {"s": [-5.0]})
        assert "-5.000" in text

    def test_multi_series_blank_separators(self):
        text = render_series("t", [1, 2], {"a": [1.0, 2.0],
                                           "b": [3.0, 4.0]})
        assert "" in text.splitlines()  # groups separated


class TestRenderSkewTrace:
    def test_buckets_bound_output(self):
        trace = [(float(i), 10.0, -10.0) for i in range(1000)]
        text = render_skew_trace("f", trace, buckets=10)
        rows = [line for line in text.splitlines()
                if line.strip() and line.strip()[0].isdigit()]
        assert len(rows) <= 12

    def test_envelope_covers_extremes(self):
        trace = [(0.0, 1.0, -1.0), (1.0, 99.0, -3.0), (2.0, 2.0, -2.0)]
        text = render_skew_trace("f", trace, buckets=1)
        assert "99" in text
        assert "peak |skew|: 99" in text
