"""The sim.out-style report renderer."""

import pytest

from repro.analysis.report import render_report
from repro.sim.simulator import Simulator
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def run():
    def worker(ctx, index, base):
        for i in range(20):
            value = yield from ctx.load_u64(base + (index * 8 + i % 4) * 8)
            yield from ctx.compute(30)
            yield from ctx.store_u64(base + (index * 8 + i % 4) * 8,
                                     value + 1)

    def main(ctx):
        base = yield from ctx.calloc(512, align=64)
        threads = yield from ctx.spawn_workers(worker, 2, base)
        yield from worker(ctx, 2, base)
        yield from ctx.join_all(threads)

    config = tiny_config(4)
    config.memory.classify_misses = True
    simulator = Simulator(config)
    result = simulator.run(main)
    return config, result


class TestReport:
    def test_contains_all_sections(self, run):
        config, result = run
        text = render_report(config, result)
        for section in ("Target configuration", "Run summary",
                        "Threads", "Memory system", "Network",
                        "Synchronization", "Host"):
            assert section in text

    def test_reflects_configuration(self, run):
        config, result = run
        text = render_report(config, result)
        assert "4" in text  # tile count
        assert "full_map" in text
        assert "in_order" in text
        assert "3 MB 24-way" in text

    def test_per_thread_rows(self, run):
        config, result = run
        text = render_report(config, result)
        # One row per tile with a start and final cycle.
        threads_section = text.split("Threads")[1].split("Memory")[0]
        rows = [line for line in threads_section.splitlines()
                if line.strip() and line.strip()[0].isdigit()]
        assert len(rows) == len(result.thread_cycles)

    def test_miss_breakdown_included_when_classified(self, run):
        config, result = run
        text = render_report(config, result)
        assert "miss breakdown" in text
        assert "cold" in text

    def test_headline_numbers_present(self, run):
        config, result = run
        text = render_report(config, result)
        assert f"{result.simulated_cycles:,}" in text
        assert f"{result.total_instructions:,}" in text

    def test_disabled_l1_reported(self):
        config = tiny_config(2)
        config.memory.l1i.enabled = False
        config.memory.l1d.enabled = False

        def tiny(ctx):
            yield from ctx.compute(10)

        result = Simulator(config).run(tiny)
        text = render_report(config, result)
        assert "disabled" in text

    def test_cli_report_flag(self, capsys):
        from repro.cli import main as cli_main
        cli_main(["run", "--workload", "fmm", "--tiles", "4",
                  "--scale", "0.2", "--report"])
        out = capsys.readouterr().out
        assert "simulation report" in out
        assert "Memory system" in out
