"""Fixture: D001 — wall-clock reads in model code."""

import time
from datetime import datetime
from time import perf_counter as pc


def quantum_length() -> float:
    start = time.time()           # D001
    mid = pc()                    # D001 (aliased from-import)
    stamp = datetime.now()        # D001
    return start + mid + stamp.microsecond
