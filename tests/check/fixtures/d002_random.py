"""Fixture: D002 — randomness outside the seeded streams."""

import random
from random import Random


def jitter() -> float:
    rng = random.Random(0)        # D002
    other = Random(7)             # D002 (from-import)
    return rng.random() + other.random() + random.random()  # D002
