"""Fixture: D003 — hash-order-dependent set iteration."""

from typing import Set


class Waiters:
    def __init__(self) -> None:
        self._waiting: Set[int] = set()

    def release(self) -> list:
        order = []
        waiters, self._waiting = self._waiting, set()
        for tile in waiters:              # D003 (swap-propagated set)
            order.append(tile)
        order.extend(t for t in self._waiting)   # D003
        return order + list({1, 2, 3})           # D003 (list over literal)
