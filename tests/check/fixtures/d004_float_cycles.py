"""Fixture: D004 — float arithmetic/equality on cycle counts."""


def advance(cycles: int, clock: int) -> bool:
    half = cycles / 2                      # D004 (true division)
    scaled = clock * 1.5                   # D004 (float literal)
    return cycles == 0.5 or scaled > half  # D004 (float equality)
