"""Fixture: W001 — wire dataclass with a non-picklable-safe field."""

from dataclasses import dataclass
from typing import Callable, Dict

WIRE_VERSION = 1


@dataclass(frozen=True)
class BadFrame:
    name: str
    callback: Callable[[int], int]      # W001 (not allowlisted)
    table: Dict[str, "Waiters"]         # W001 (custom class in a Dict)


class Waiters:
    pass
