"""Fixture: W002 — allowlist marker without a justification."""

import time


def profile() -> float:
    return time.time()  # check: allow D001
