"""Fixture: a bare allow marker on a multi-line statement (W002).

The marker sits on the *last* line of a statement spanning three
lines.  Without a justification it must not suppress the D004 finding
(anchored at the statement's first line) and must itself be reported.
"""


def stretch(total_cycles):
    return (
        total_cycles
        / 2)  # check: allow D004
