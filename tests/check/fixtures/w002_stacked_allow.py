"""Fixture: a stacked allow marker without a justification (W002).

``allow D001,D002`` names two rules but justifies neither, so neither
finding is suppressed and the bare marker is reported once.
"""

import random
import time

t0 = (time.time(), random.random())  # check: allow D001,D002
