"""The ``repro check`` subcommand: exit codes and JSON output."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_fixture_path_exits_nonzero(capsys):
    code = main(["check", str(FIXTURES / "d002_random.py")])
    assert code == 1
    out = capsys.readouterr().out
    assert "D002" in out
    assert "3 finding(s)" in out


def test_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(cycles):\n    return cycles + 1\n")
    assert main(["check", str(clean)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_explorer_only_run(capsys):
    code = main(["check", "--no-lint", "--tiles", "2", "--depth", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "explored" in out
    assert "all invariants hold" in out


def test_json_output_is_machine_readable(capsys):
    code = main(["check", str(FIXTURES / "d001_wall_clock.py"),
                 "--json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert {f["rule"] for f in payload["lint"]} == {"D001"}


def test_json_includes_protocol_report(capsys):
    code = main(["check", "--no-lint", "--tiles", "2", "--depth", "2",
                 "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    protocol = payload["protocol"]
    assert protocol["violations"] == []
    assert protocol["explored_states"] > 0
