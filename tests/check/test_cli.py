"""The ``repro check`` subcommand: exit codes and JSON output."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_fixture_path_exits_nonzero(capsys):
    code = main(["check", str(FIXTURES / "d002_random.py")])
    assert code == 1
    out = capsys.readouterr().out
    assert "D002" in out
    assert "3 finding(s)" in out


def test_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(cycles):\n    return cycles + 1\n")
    assert main(["check", str(clean)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_explorer_only_run(capsys):
    code = main(["check", "--no-lint", "--tiles", "2", "--depth", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "explored" in out
    assert "all invariants hold" in out


def test_json_output_is_machine_readable(capsys):
    code = main(["check", str(FIXTURES / "d001_wall_clock.py"),
                 "--json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert {f["rule"] for f in payload["lint"]} == {"D001"}


def test_json_includes_protocol_report(capsys):
    code = main(["check", "--no-lint", "--tiles", "2", "--depth", "2",
                 "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    protocol = payload["protocol"]
    assert protocol["violations"] == []
    assert protocol["explored_states"] > 0


def test_json_includes_membership_report(capsys):
    code = main(["check", "--no-lint", "--no-protocol",
                 "--membership-depth", "6", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    membership = payload["membership"]
    assert membership["violations"] == []
    assert membership["depth"] == 6
    assert membership["unique_states"] > 0
    assert membership["crash_injections"] > 0
    assert "running" in membership["crash_phases"]


def test_membership_config_flags_are_honoured(capsys):
    code = main(["check", "--no-lint", "--no-protocol",
                 "--membership-workers", "1",
                 "--membership-max-workers", "2",
                 "--membership-shards", "1",
                 "--membership-jobs", "0",
                 "--membership-depth", "4", "--json"])
    assert code == 0
    membership = json.loads(capsys.readouterr().out)["membership"]
    assert (membership["workers"], membership["max_workers"],
            membership["shards"], membership["jobs"]) == (1, 2, 1, 0)


def test_no_membership_skips_the_explorer(capsys):
    code = main(["check", "--no-lint", "--no-membership",
                 "--tiles", "2", "--depth", "2", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert "membership" not in payload


def test_github_format_emits_error_annotations(capsys):
    code = main(["check", str(FIXTURES / "d002_random.py"),
                 "--format", "github"])
    assert code == 1
    out = capsys.readouterr().out
    assert "::error file=" in out
    assert "line=8" in out
    assert "title=D002" in out
    # The human summary line still closes the section.
    assert "3 finding(s)" in out


def test_github_format_escapes_newlines(capsys):
    # Workflow-command payloads are single-line: the escaper is what
    # keeps multi-line messages from truncating the annotation.
    from repro.check.cli import _github_escape
    assert _github_escape("a%b\r\nc") == "a%25b%0D%0Ac"


def test_accept_wire_schema_reports_each_record(capsys):
    # The committed manifest is current, so accepting it again must
    # be a no-op that says so for every wire module.
    code = main(["check", "--accept-wire-schema"])
    assert code == 0
    out = capsys.readouterr().out
    assert "wire (distrib/wire.py): unchanged" in out
    assert "serve (serve/protocol.py): unchanged" in out
    assert "net (net/handshake.py): unchanged" in out
