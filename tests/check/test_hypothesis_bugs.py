"""Property: every mutated directory transition table yields a finding.

The explorer is only trustworthy if it actually *fails* on broken
protocols.  Each mutation below corrupts one transition of the
directory state machine; hypothesis drives combinations of mutation,
tile count and exploration depth, and the property is that the
explorer always reports at least one violation with a reproduction
sequence attached.
"""

from hypothesis import given, settings, strategies as st

from repro.check.protocol import ProtocolExplorer, build_engine
from repro.memory.directory import AddResult, DirState


def mutate_drop_add(engine):
    """add_sharer forgets to record the sharer (U -> S loses the S)."""
    for directory in engine.directories:
        directory.add_sharer = \
            lambda entry, tile, timestamp=0: AddResult()


def mutate_phantom_sharer(engine):
    """add_sharer also records a tile that never requested the line."""
    def wrap(directory):
        original = directory.add_sharer

        def add(entry, tile, timestamp=0):
            result = original(entry, tile, timestamp)
            phantom = type(tile)((int(tile) + 1) % engine.num_tiles)
            entry.sharers.setdefault(phantom, None)
            return result
        directory.add_sharer = add

    for directory in engine.directories:
        wrap(directory)


def mutate_skip_invalidation(engine):
    """Writes no longer invalidate the other sharers (S -> M keeps S)."""
    engine._invalidate_sharers = \
        lambda home, sharers, line, ts, exclude: 0


def mutate_forget_modified(engine):
    """Every lookup downgrades M entries to SHARED: the directory
    forgets ownership, so dirty recalls are skipped."""
    def wrap(directory):
        original = directory.entry

        def entry(line_address):
            result = original(line_address)
            if result.state is DirState.MODIFIED:
                result.state = DirState.SHARED
            return result
        directory.entry = entry

    for directory in engine.directories:
        wrap(directory)


MUTATIONS = [mutate_drop_add, mutate_phantom_sharer,
             mutate_skip_invalidation, mutate_forget_modified]


@settings(max_examples=12, deadline=None)
@given(mutation=st.sampled_from(MUTATIONS),
       tiles=st.integers(min_value=2, max_value=3),
       depth=st.integers(min_value=3, max_value=4))
def test_mutated_directory_always_produces_findings(mutation, tiles,
                                                    depth):
    def buggy():
        engine = build_engine(tiles)
        mutation(engine)
        return engine

    report = ProtocolExplorer(tiles=tiles, lines=1, depth=depth,
                              engine_factory=buggy,
                              max_violations=1).explore()
    assert report.violations, (
        f"{mutation.__name__} with {tiles} tiles at depth {depth} "
        "was not detected")
    violation = report.violations[0]
    assert violation.sequence
    assert violation.message


def test_unmutated_engine_is_a_valid_control():
    """The same harness reports nothing when no mutation is applied."""
    report = ProtocolExplorer(tiles=2, lines=1, depth=3,
                              engine_factory=lambda: build_engine(2),
                              max_violations=1).explore()
    assert report.violations == []
