"""The determinism lints: every rule fires on its fixture, none on the tree."""

import ast
from pathlib import Path

import pytest

from repro.check.lint import (
    check_wire_manifest,
    lint_file,
    lint_paths,
    lint_tree,
    package_root,
    scope_for,
    wire_fingerprint,
)

FIXTURES = Path(__file__).parent / "fixtures"


class TestFixturesTrigger:
    @pytest.mark.parametrize("fixture,rule,count", [
        ("d001_wall_clock.py", "D001", 3),
        ("d002_random.py", "D002", 3),
        ("d003_set_iter.py", "D003", 3),
        ("d004_float_cycles.py", "D004", 3),
        ("w001_wire.py", "W001", 2),
    ])
    def test_rule_fires(self, fixture, rule, count):
        findings = lint_file(FIXTURES / fixture)
        assert [f.rule for f in findings] == [rule] * count

    def test_bare_allow_marker_is_a_finding(self):
        findings = lint_file(FIXTURES / "w002_bare_allow.py")
        rules = sorted(f.rule for f in findings)
        # The unjustified marker does NOT suppress, and is itself
        # reported.
        assert rules == ["D001", "W002"]

    def test_findings_carry_location(self):
        finding = lint_file(FIXTURES / "d002_random.py")[0]
        assert finding.line == 8
        assert "d002_random.py:8:" in finding.render()

    def test_bare_allow_on_multiline_statement_is_a_finding(self):
        # The marker sits on the statement's *last* line; without a
        # justification neither the D004 (anchored at the first line)
        # nor the marker itself gets a pass.
        findings = lint_file(FIXTURES / "w002_multiline_allow.py")
        assert sorted(f.rule for f in findings) == ["D004", "W002"]

    def test_stacked_bare_allow_suppresses_nothing(self):
        # ``allow D001,D002`` without a justification: both findings
        # stay, the bare marker is reported exactly once.
        findings = lint_file(FIXTURES / "w002_stacked_allow.py")
        assert sorted(f.rule for f in findings) == \
            ["D001", "D002", "W002"]


class TestSuppression:
    def test_justified_allow_suppresses(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "t0 = time.time()  # check: allow D001 -- profiling\n")
        assert lint_file(path) == []

    def test_allow_covers_multiline_nodes(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def f(cycles):\n"
            "    return (\n"
            "        cycles / 2)  # check: allow D004 -- ratio\n")
        assert lint_file(path) == []

    def test_allow_only_suppresses_named_rule(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "t0 = time.time()  # check: allow D002 -- wrong rule\n")
        assert [f.rule for f in lint_file(path)] == ["D001"]

    def test_stacked_justified_allow_suppresses_all_named(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import random\n"
            "import time\n"
            "t0 = (time.time(), random.random())"
            "  # check: allow D001,D002 -- boot entropy probe\n")
        assert lint_file(path) == []

    def test_stacked_allow_tolerates_unmatched_rule(self, tmp_path):
        # Naming a rule that does not fire on the line is harmless:
        # the matched rule is still suppressed.
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "t0 = time.time()"
            "  # check: allow D001,D003 -- migration scan\n")
        assert lint_file(path) == []

    def test_stacked_allow_covers_multiline_nodes(self, tmp_path):
        # Two different rules on one statement spanning three lines,
        # one stacked marker on the closing line: both violating
        # nodes' spans reach the marker, so both are suppressed.
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "def f(cycles):\n"
            "    return (cycles /\n"
            "            time.time(\n"
            "            ))  # check: allow D001,D004 -- wall ratio\n")
        assert lint_file(path) == []


class TestScoping:
    def test_model_dirs_get_wall_clock_rule(self):
        root = package_root()
        scope = scope_for(root / "memory" / "coherence.py", root)
        assert scope.wall_clock and scope.float_cycles

    def test_host_and_telemetry_are_exempt(self):
        root = package_root()
        for sub in ("host", "telemetry", "distrib"):
            scope = scope_for(root / sub / "anything.py", root)
            assert not scope.wall_clock
        # ...but distrib is still covered by the set-iteration rule.
        assert scope_for(root / "distrib" / "wire.py",
                         root).set_iteration

    def test_wire_carrying_dirs_get_set_iteration_rule(self):
        # net/ and serve/ both put data on wires; hash-order set
        # iteration there reorders frames across hosts, so D003
        # covers them like distrib/ (without the model-only rules).
        root = package_root()
        for sub in ("net", "serve"):
            scope = scope_for(root / sub / "anything.py", root)
            assert scope.set_iteration, sub
            assert not scope.wall_clock and not scope.float_cycles

    def test_d003_fires_under_net_scope(self, tmp_path):
        source = ("def fanout() -> list:\n"
                  "    return list({1, 2, 3})\n")
        for sub, rules in (("net", ["D003"]), ("host", [])):
            (tmp_path / sub).mkdir()
            path = tmp_path / sub / "mod.py"
            path.write_text(source)
            found = [f.rule for f in lint_file(path, root=tmp_path)]
            assert found == rules, (sub, found)

    def test_rng_module_may_construct_random(self):
        root = package_root()
        assert not scope_for(root / "common" / "rng.py",
                             root).randomness
        assert scope_for(root / "common" / "other.py", root).randomness

    def test_outside_tree_all_rules_apply(self, tmp_path):
        scope = scope_for(tmp_path / "f.py", package_root())
        assert scope.wall_clock and scope.randomness and \
            scope.set_iteration and scope.float_cycles

    def test_profile_package_may_read_wall_clocks(self):
        # Host profiling IS wall-clock measurement: the whole
        # src/repro/profile/ scope is D001-exempt, no inline markers.
        root = package_root()
        assert not scope_for(root / "profile" / "timers.py",
                             root).wall_clock

    def test_profile_exemption_is_scoped(self, tmp_path):
        # The exemption is the directory, not the call: identical
        # perf_counter code is clean under profile/ and still a D001
        # finding under a model directory.
        source = ("import time\n"
                  "t0 = time.perf_counter_ns()\n")
        for sub, rules in (("profile", []), ("memory", ["D001"])):
            (tmp_path / sub).mkdir()
            path = tmp_path / sub / "mod.py"
            path.write_text(source)
            found = [f.rule for f in lint_file(path, root=tmp_path)]
            assert found == rules, (sub, found)

    def test_obs_package_may_read_wall_clocks(self):
        # repro.obs is host-side observability: `repro top` refresh
        # loops and flight-recorder dump timestamps ARE wall-clock
        # reads, so the whole src/repro/obs/ scope is D001-exempt —
        # and stays exempt even if obs ever joins the model dirs.
        from repro.check.lint import D001_EXEMPT_DIRS
        assert "obs" in D001_EXEMPT_DIRS
        root = package_root()
        for module in ("top.py", "flight.py", "spans.py"):
            assert not scope_for(root / "obs" / module,
                                 root).wall_clock, module

    def test_obs_exemption_is_scoped(self, tmp_path):
        # Same discipline as profile/: the exemption covers the obs
        # directory, not wall-clock calls wherever they appear.
        source = ("import time\n"
                  "stamp = time.time()\n")
        for sub, rules in (("obs", []), ("sync", ["D001"])):
            (tmp_path / sub).mkdir()
            path = tmp_path / sub / "mod.py"
            path.write_text(source)
            found = [f.rule for f in lint_file(path, root=tmp_path)]
            assert found == rules, (sub, found)


class TestWireManifest:
    WIRE_SRC = (
        "from dataclasses import dataclass\n"
        "WIRE_VERSION = 3\n"
        "@dataclass\n"
        "class Frame:\n"
        "    kind: int\n"
        "    blob: bytes\n")

    def test_fingerprint_changes_with_fields(self):
        base, version = wire_fingerprint(ast.parse(self.WIRE_SRC))
        assert version == 3
        changed, _ = wire_fingerprint(ast.parse(
            self.WIRE_SRC + "    extra: str\n"))
        assert changed != base

    def test_field_change_without_bump_is_flagged(self, tmp_path):
        import json
        schema = tmp_path / "schema.json"
        fingerprint, _ = wire_fingerprint(ast.parse(self.WIRE_SRC))
        schema.write_text(json.dumps(
            {"wire_version": 3, "fingerprint": fingerprint}))
        # Unchanged: clean.
        assert check_wire_manifest(ast.parse(self.WIRE_SRC), "wire.py",
                                   schema) == []
        # Field added, version kept: W001.
        findings = check_wire_manifest(
            ast.parse(self.WIRE_SRC + "    extra: str\n"), "wire.py",
            schema)
        assert [f.rule for f in findings] == ["W001"]
        assert "bump WIRE_VERSION" in findings[0].message

    def test_version_bump_without_refresh_is_flagged(self, tmp_path):
        import json
        schema = tmp_path / "schema.json"
        fingerprint, _ = wire_fingerprint(ast.parse(self.WIRE_SRC))
        schema.write_text(json.dumps(
            {"wire_version": 2, "fingerprint": fingerprint}))
        findings = check_wire_manifest(ast.parse(self.WIRE_SRC),
                                       "wire.py", schema)
        assert [f.rule for f in findings] == ["W001"]


class TestRealTree:
    def test_repro_source_tree_is_clean(self):
        findings = lint_tree()
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_recorded_schema_matches_real_wire_module(self):
        """The committed wire_schema.json must pin every wire module as
        it is today — the refresh after a version bump is mandatory."""
        import json
        root = package_root()
        tree = ast.parse((root / "distrib" / "wire.py").read_text())
        fingerprint, version = wire_fingerprint(tree)
        serve_tree = ast.parse(
            (root / "serve" / "protocol.py").read_text())
        serve_fingerprint, serve_version = wire_fingerprint(serve_tree)
        net_tree = ast.parse(
            (root / "net" / "handshake.py").read_text())
        net_fingerprint, net_version = wire_fingerprint(net_tree)
        recorded = json.loads(
            (root / "check" / "wire_schema.json").read_text())
        assert recorded == {
            "wire_version": version,
            "fingerprint": fingerprint,
            "serve": {"wire_version": serve_version,
                      "fingerprint": serve_fingerprint},
            "net": {"wire_version": net_version,
                    "fingerprint": net_fingerprint},
        }

    def test_real_wire_drift_still_fails(self, tmp_path):
        """Guard the guard: against a stale recorded schema, W001 must
        fire on the real wire module (a silent pass here would mean
        future frame/dataclass changes could ship unversioned)."""
        import json
        root = package_root()
        wire_path = root / "distrib" / "wire.py"
        tree = ast.parse(wire_path.read_text())
        _, version = wire_fingerprint(tree)
        stale = tmp_path / "schema.json"
        stale.write_text(json.dumps(
            {"wire_version": version, "fingerprint": "0" * 16}))
        findings = check_wire_manifest(tree, str(wire_path), stale)
        assert [f.rule for f in findings] == ["W001"]

    def test_serve_protocol_drift_still_fails(self, tmp_path):
        """Same guard for the serve JSON protocol: a stale nested
        record must flag the real serve/protocol.py module."""
        import json
        root = package_root()
        proto_path = root / "serve" / "protocol.py"
        tree = ast.parse(proto_path.read_text())
        _, version = wire_fingerprint(tree)
        stale = tmp_path / "schema.json"
        stale.write_text(json.dumps({
            "wire_version": 99, "fingerprint": "f" * 16,
            "serve": {"wire_version": version,
                      "fingerprint": "0" * 16}}))
        findings = check_wire_manifest(tree, str(proto_path), stale,
                                       record_key="serve")
        assert [f.rule for f in findings] == ["W001"]
        assert "bump WIRE_VERSION" in findings[0].message

    def test_net_handshake_drift_still_fails(self, tmp_path):
        """Same guard for the net handshake frames: a stale nested
        record must flag the real net/handshake.py module."""
        import json
        root = package_root()
        hs_path = root / "net" / "handshake.py"
        tree = ast.parse(hs_path.read_text())
        _, version = wire_fingerprint(tree)
        stale = tmp_path / "schema.json"
        stale.write_text(json.dumps({
            "wire_version": 99, "fingerprint": "f" * 16,
            "net": {"wire_version": version,
                    "fingerprint": "0" * 16}}))
        findings = check_wire_manifest(tree, str(hs_path), stale,
                                       record_key="net")
        assert [f.rule for f in findings] == ["W001"]
        assert "bump WIRE_VERSION" in findings[0].message

    def test_missing_serve_record_is_flagged(self, tmp_path):
        import json
        root = package_root()
        proto_path = root / "serve" / "protocol.py"
        tree = ast.parse(proto_path.read_text())
        stale = tmp_path / "schema.json"
        stale.write_text(json.dumps(
            {"wire_version": 4, "fingerprint": "0" * 16}))
        findings = check_wire_manifest(tree, str(proto_path), stale,
                                       record_key="serve")
        assert [f.rule for f in findings] == ["W001"]
        assert "no 'serve' record" in findings[0].message

    def test_accept_wire_schema_records_both_modules(self, tmp_path):
        import json
        from repro.check.lint import accept_wire_schema
        schema = tmp_path / "schema.json"
        record = accept_wire_schema(schema_path=schema)
        on_disk = json.loads(schema.read_text())
        assert on_disk == record
        assert {"wire_version", "fingerprint", "serve", "net"} \
            <= set(record)
        assert {"wire_version", "fingerprint"} \
            == set(record["serve"])
        assert {"wire_version", "fingerprint"} \
            == set(record["net"])

    def test_lint_paths_recurses_directories(self):
        findings = lint_paths([FIXTURES])
        assert {f.rule for f in findings} >= {"D001", "D002", "D003",
                                              "D004", "W001", "W002"}
