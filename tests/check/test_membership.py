"""The membership/migration model checker.

Two halves: the shipped coordinator model passes every invariant at
real coverage (crash injection in every worker-automaton phase, well
past a thousand distinct states), and each seeded bug class — one per
invariant — is caught with a concrete reproduction trace.
"""

import pytest

from repro.check.membership import (
    KNOWN_BUGS,
    MembershipExplorer,
    MembershipViolation,
)


class TestCleanModel:
    def test_default_exploration_is_clean(self):
        report = MembershipExplorer().explore()
        assert report.ok, "\n".join(
            v.render() for v in report.violations)
        assert report.explored_states > 0
        assert report.transitions >= report.explored_states

    def test_default_coverage_floor(self):
        # The acceptance bar: >= 1000 distinct states at the default
        # depth, with crashes injected at every phase the model's
        # workers can occupy (mid-quantum, mid-barrier, mid-migration,
        # mid-restore, ...).
        report = MembershipExplorer().explore()
        assert report.unique_states >= 1000
        assert report.crash_injections >= 1000
        assert set(report.crash_phases) >= {
            "idle", "running", "ckpt_pending", "restore_pending",
            "adopt_pending", "release_pending", "stats_pending"}

    def test_exploration_is_deterministic(self):
        first = MembershipExplorer(depth=6).explore()
        second = MembershipExplorer(depth=6).explore()
        assert (first.unique_states, first.transitions,
                first.crash_injections, first.crash_phases) == \
            (second.unique_states, second.transitions,
             second.crash_injections, second.crash_phases)

    def test_minimal_cluster_is_clean(self):
        report = MembershipExplorer(
            workers=1, max_workers=2, shards=1, jobs=0,
            depth=6).explore()
        assert report.ok
        assert report.unique_states > 1

    def test_report_render_mentions_coverage(self):
        report = MembershipExplorer(depth=4).explore()
        text = report.render()
        assert "membership explorer:" in text
        assert "crash injections" in text
        assert "all membership invariants hold" in text

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            MembershipExplorer(workers=0)
        with pytest.raises(ValueError):
            MembershipExplorer(shards=0)

    def test_unknown_bug_seed_rejected(self):
        with pytest.raises(ValueError, match="unknown bug"):
            MembershipExplorer(bugs=frozenset({"gremlins"}))


class TestViolationRendering:
    def test_trace_renders_as_arrow_chain(self):
        violation = MembershipViolation(("a", "b"), "boom")
        assert violation.render() == "[a -> b] boom"

    def test_empty_trace_marks_initial_state(self):
        violation = MembershipViolation((), "boom")
        assert violation.render() == "[<initial>] boom"


BUG_NEEDLES = [
    ("double_owner", "single-owner invariant"),
    ("skip_release", "post-RELEASE invariant"),
    ("orphan_on_recovery", "coverage invariant"),
    ("lose_requeued_job", "job-conservation invariant"),
    ("no_crash_detection", "deadlock invariant"),
    ("barrier_in_quantum", "phase 'running'"),
]


class TestSeededBugs:
    """Every invariant class actually fires, with a repro trace."""

    @pytest.mark.parametrize("bug,needle", BUG_NEEDLES)
    def test_bug_is_caught_with_trace(self, bug, needle):
        report = MembershipExplorer(bugs=frozenset({bug})).explore()
        assert not report.ok
        matching = [v for v in report.violations
                    if needle in v.message]
        assert matching, "\n".join(
            v.render() for v in report.violations)
        # A reproduction is an actual event sequence, bounded by the
        # exploration depth (BFS makes it a shortest such sequence).
        trace = matching[0].trace
        assert trace
        assert len(trace) <= report.depth + 1
        assert " -> ".join(trace) in matching[0].render()

    def test_parametrization_covers_every_known_bug(self):
        assert {bug for bug, _ in BUG_NEEDLES} == set(KNOWN_BUGS)

    def test_lost_job_has_minimal_trace(self):
        # The shortest way to lose a job: assign it, crash the worker,
        # recover.  BFS must find exactly that three-event chain.
        report = MembershipExplorer(
            bugs=frozenset({"lose_requeued_job"})).explore()
        shortest = min(report.violations,
                       key=lambda v: len(v.trace))
        assert len(shortest.trace) == 3
        assert shortest.trace[0].startswith("job:assign")
        assert shortest.trace[1].startswith("crash")

    def test_clean_model_requeues_instead(self):
        # Same schedule without the bug: the job comes back as queued,
        # so no violation anywhere in the state space.
        report = MembershipExplorer().explore()
        assert not any("job" in v.message
                       for v in report.violations)
