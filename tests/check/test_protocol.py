"""The protocol explorer: full coverage on the real engine, bug detection."""

import pytest

from repro.check.protocol import ProtocolExplorer, build_engine


class TestRealProtocol:
    def test_three_tile_exhaustive(self):
        """The acceptance config: >= 1000 states, zero violations."""
        report = ProtocolExplorer(tiles=3, lines=1, depth=4).explore()
        assert report.explored_states >= 1000
        assert report.transitions >= 1000
        assert report.unique_states >= 5
        assert report.violations == []
        assert report.unreachable == []
        assert report.ok

    def test_two_tiles_two_lines(self):
        report = ProtocolExplorer(tiles=2, lines=2, depth=3).explore()
        assert report.violations == []
        assert report.unreachable == []

    def test_mesi(self):
        report = ProtocolExplorer(tiles=2, lines=1, depth=3,
                                  protocol="mesi").explore()
        assert report.violations == []
        assert report.unreachable == []

    @pytest.mark.parametrize("directory", ["limited", "limitless"])
    def test_directory_variants(self, directory):
        report = ProtocolExplorer(tiles=3, lines=1, depth=3,
                                  directory_type=directory,
                                  max_sharers=2).explore()
        assert report.violations == []
        assert report.unreachable == []

    def test_needs_two_tiles(self):
        with pytest.raises(ValueError):
            ProtocolExplorer(tiles=1)


class TestBugDetection:
    def test_skipped_invalidation_is_caught(self):
        def buggy():
            engine = build_engine(2)
            engine._invalidate_sharers = \
                lambda home, sharers, line, ts, exclude: 0
            return engine

        report = ProtocolExplorer(tiles=2, lines=1, depth=3,
                                  engine_factory=buggy).explore()
        assert report.violations
        # The report carries a runnable reproduction sequence.
        assert all(v.sequence for v in report.violations)

    def test_lost_writeback_is_caught(self):
        """Dropping writebacks breaks functional data integrity."""
        def buggy():
            engine = build_engine(2)
            engine.backing.write_line = lambda address, data: None
            return engine

        report = ProtocolExplorer(tiles=2, lines=1, depth=3,
                                  engine_factory=buggy).explore()
        assert any("stale" in v.message or "lost" in v.message
                   for v in report.violations)

    def test_violation_reports_are_bounded(self):
        def buggy():
            engine = build_engine(2)
            engine._invalidate_sharers = \
                lambda home, sharers, line, ts, exclude: 0
            return engine

        report = ProtocolExplorer(tiles=2, lines=1, depth=4,
                                  engine_factory=buggy,
                                  max_violations=3).explore()
        assert len(report.violations) == 3
