"""Runtime sanitizers: observer purity, violation detection, equivalence."""

from types import SimpleNamespace

import pytest

from repro.check.sanitize import Sanitizers
from repro.common.config import SimulationConfig
from repro.common.errors import SanitizerViolation
from repro.sim.simulator import Simulator
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import Event, EventCategory


def quantum_event(tile, start, end):
    return Event(int(EventCategory.QUANTUM), "quantum", tile, start,
                 {"cycles": end, "instructions": 10, "status": "ran"})


def arrive_event(tile, clock, epoch_end):
    return Event(int(EventCategory.SYNC), "barrier_arrive", tile, clock,
                 {"epoch_end": epoch_end, "waiting": 1})


def release_event(epoch_end, waiters):
    return Event(int(EventCategory.SYNC), "barrier_release", None,
                 epoch_end, {"waiters": waiters, "next_epoch":
                             epoch_end + 500})


def fresh(num_tiles=4):
    bus = TelemetryBus(0)
    return Sanitizers(num_tiles, bus), bus


class TestObserverPurity:
    """Observers must never change what the bus records."""

    def test_mask_zero_bus_records_nothing_but_observer_sees_all(self):
        sanitizers, bus = fresh()
        channel = bus.channel(EventCategory.QUANTUM)
        assert channel is not None  # observer keeps the channel alive
        channel.emit("quantum", 0, 0, {"cycles": 10})
        assert bus.events == []
        assert bus._seq == 0
        assert sanitizers.events_checked == 1

    def test_recording_bus_is_unchanged_by_the_observer(self):
        plain = TelemetryBus(int(EventCategory.QUANTUM))
        plain.emit(int(EventCategory.QUANTUM), "quantum", 0, 0,
                   {"cycles": 10})

        observed = TelemetryBus(int(EventCategory.QUANTUM))
        Sanitizers(4, observed)
        observed.emit(int(EventCategory.QUANTUM), "quantum", 0, 0,
                      {"cycles": 10})

        assert len(observed.events) == len(plain.events) == 1
        assert observed.events[0].seq == plain.events[0].seq
        assert observed._seq == plain._seq

    def test_observer_only_sees_its_mask(self):
        sanitizers, bus = fresh()
        bus.emit(int(EventCategory.CACHE), "miss", 0, 0, {})
        assert sanitizers.events_checked == 0
        bus.emit(int(EventCategory.SYNC), "skew", 0, 0, {})
        assert sanitizers.events_checked == 1


class TestQuantumChecks:
    def test_monotone_quanta_pass(self):
        sanitizers, _ = fresh()
        sanitizers._on_event(quantum_event(0, 0, 100))
        sanitizers._on_event(quantum_event(1, 0, 80))
        sanitizers._on_event(quantum_event(0, 100, 250))
        assert sanitizers.events_checked == 3

    def test_quantum_running_backwards_fails(self):
        sanitizers, _ = fresh()
        with pytest.raises(SanitizerViolation, match="backwards"):
            sanitizers._on_event(quantum_event(0, 100, 40))

    def test_quantum_starting_before_previous_end_fails(self):
        sanitizers, _ = fresh()
        sanitizers._on_event(quantum_event(0, 0, 100))
        with pytest.raises(SanitizerViolation, match="backwards"):
            sanitizers._on_event(quantum_event(0, 60, 120))

    def test_clock_below_committed_interaction_bound_fails(self):
        sanitizers, _ = fresh()
        sanitizers.on_interaction(tile=0, timestamp=500,
                                  clock_after=500)
        with pytest.raises(SanitizerViolation, match="committed"):
            sanitizers._on_event(quantum_event(0, 0, 200))


class TestBarrierChecks:
    def test_full_epoch_passes(self):
        sanitizers, _ = fresh(num_tiles=2)
        sanitizers._on_event(arrive_event(0, 510, 500))
        sanitizers._on_event(arrive_event(1, 505, 500))
        sanitizers._on_event(release_event(500, 2))
        sanitizers._on_event(arrive_event(0, 1001, 1000))

    def test_arrival_before_epoch_boundary_fails(self):
        sanitizers, _ = fresh()
        with pytest.raises(SanitizerViolation, match="before reaching"):
            sanitizers._on_event(arrive_event(0, 400, 500))

    def test_mixed_epoch_arrivals_fail(self):
        sanitizers, _ = fresh()
        sanitizers._on_event(arrive_event(0, 510, 500))
        with pytest.raises(SanitizerViolation, match="still gathering"):
            sanitizers._on_event(arrive_event(1, 1200, 1000))

    def test_arrival_for_released_epoch_fails(self):
        sanitizers, _ = fresh(num_tiles=1)
        sanitizers._on_event(arrive_event(0, 510, 500))
        sanitizers._on_event(release_event(500, 1))
        with pytest.raises(SanitizerViolation,
                           match="already-released"):
            sanitizers._on_event(arrive_event(0, 520, 500))

    def test_epochs_must_strictly_advance(self):
        sanitizers, _ = fresh(num_tiles=1)
        sanitizers._on_event(arrive_event(0, 510, 500))
        sanitizers._on_event(release_event(500, 1))
        with pytest.raises(SanitizerViolation, match="strictly"):
            sanitizers._on_event(release_event(500, 0))

    def test_phantom_waiters_fail(self):
        sanitizers, _ = fresh()
        sanitizers._on_event(arrive_event(0, 510, 500))
        with pytest.raises(SanitizerViolation, match="phantom"):
            sanitizers._on_event(release_event(500, 3))


class TestDirectHooks:
    def test_interaction_below_timestamp_fails(self):
        sanitizers, _ = fresh()
        with pytest.raises(SanitizerViolation, match="forward"):
            sanitizers.on_interaction(tile=2, timestamp=900,
                                      clock_after=899)

    def test_message_arriving_before_send_fails(self):
        sanitizers, _ = fresh()
        message = SimpleNamespace(src=0, dst=1, timestamp=100,
                                  arrival_time=99)
        with pytest.raises(SanitizerViolation, match="before it was"):
            sanitizers.on_message(message)

    def test_healthy_hooks_count_work(self):
        sanitizers, _ = fresh()
        sanitizers.on_interaction(tile=0, timestamp=10, clock_after=10)
        sanitizers.on_message(SimpleNamespace(
            src=0, dst=1, timestamp=10, arrival_time=15))
        assert sanitizers.interactions_checked == 1
        assert sanitizers.messages_checked == 1


def small_program(ctx):
    lock = yield from ctx.calloc(8, align=64)
    counter = yield from ctx.calloc(8)

    def worker(ctx, index, lock, counter):
        for _ in range(4):
            yield from ctx.lock(lock)
            value = yield from ctx.load_u64(counter)
            yield from ctx.store_u64(counter, value + 1)
            yield from ctx.unlock(lock)
            yield from ctx.compute(25)

    threads = yield from ctx.spawn_workers(worker, 3, lock, counter)
    yield from worker(ctx, 3, lock, counter)
    yield from ctx.join_all(threads)
    return (yield from ctx.load_u64(counter))


def run_small(sanitize, sync="lax_barrier"):
    config = SimulationConfig(num_tiles=4)
    config.host.quantum_instructions = 200
    config.sync.model = sync
    config.sync.barrier_interval = 500
    config.check.sanitize = sanitize
    config.validate()
    simulator = Simulator(config)
    result = simulator.run(small_program)
    return simulator, result


class TestEndToEnd:
    @pytest.mark.parametrize("sync", ["lax", "lax_barrier", "lax_p2p"])
    def test_sanitized_run_is_timing_identical(self, sync):
        _, plain = run_small(sanitize=False, sync=sync)
        simulator, checked = run_small(sanitize=True, sync=sync)
        assert checked.simulated_cycles == plain.simulated_cycles
        assert checked.total_instructions == plain.total_instructions
        assert checked.main_result == plain.main_result
        assert checked.counter("transport.messages_sent") == \
            plain.counter("transport.messages_sent")
        # ...and the sanitizers genuinely ran.
        assert simulator.sanitizers.events_checked > 0
        assert simulator.sanitizers.messages_checked > 0

    def test_sanitize_without_tracing_records_no_events(self):
        simulator, _ = run_small(sanitize=True)
        assert simulator.sanitizers is not None
        # The bus exists only to carry the observer; nothing recorded.
        assert simulator.telemetry.events == []

    def test_sanitizers_off_by_default(self):
        simulator, _ = run_small(sanitize=False)
        assert simulator.sanitizers is None
