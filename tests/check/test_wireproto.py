"""The wire-protocol spec and its P-rule conformance lints.

Three layers of guarantees:

- the committed ``wire_proto.json`` is internally valid and every
  tampered variant is rejected loudly (a typo must never become a
  silently never-matching rule);
- the real source tree is in lockstep with the spec: every role's
  statically-extracted send set equals the spec's, and every frame the
  peer can send has a handling site;
- the P001/P002/P003 rules themselves fire on synthetic modules that
  violate the spec, and honour the ``# check: allow`` machinery.
"""

import ast
import copy
import json

import pytest

from repro.check.lint import _Suppressions, package_root
from repro.check.wireproto import (
    WireProtoError,
    extract_role,
    extract_sites,
    lint_wireproto,
    load_spec,
    receivable,
    spec_modules,
    validate_spec,
)

ROLES = ("coordinator", "worker", "serve_daemon", "serve_remote",
         "serve_client", "serve_api", "net_dialer", "net_listener")


def _lint(source, rel, spec):
    tree = ast.parse(source)
    suppressions = _Suppressions(source, rel)
    findings = lint_wireproto(tree, rel, rel, suppressions, spec)
    return findings + suppressions.findings


# -- spec validity ------------------------------------------------------------


class TestSpecValidation:
    def test_committed_spec_loads(self):
        spec = load_spec()
        assert spec["format"] == "repro.wire_proto/1"
        assert set(spec["roles"]) == set(ROLES)

    def test_load_is_cached_by_mtime(self):
        assert load_spec() is load_spec()

    def test_spec_covers_all_wire_modules(self):
        assert spec_modules(load_spec()) == {
            "distrib/coordinator.py", "distrib/worker.py",
            "serve/remote.py", "serve/client.py", "serve/daemon.py",
            "net/handshake.py"}

    @pytest.mark.parametrize("mutate,needle", [
        (lambda s: s.update(format="repro.wire_proto/9"),
         "unknown spec format"),
        (lambda s: s["roles"]["worker"].pop("sends"),
         "missing 'sends'"),
        (lambda s: s["roles"]["coordinator"].update(peer="nobody"),
         "unknown peer"),
        (lambda s: s["roles"]["worker"].update(peer="worker"),
         "disagree about peering"),
        (lambda s: s["roles"]["worker"]["sends"].append("BOGUS"),
         "unknown FrameKind"),
        (lambda s: s["pairs"][0].update(request="GOODBYE_KISS"),
         "not in"),
        (lambda s: s["pairs"][0]["replies"].append("HELLO"),
         "responder's send set"),
        (lambda s: s["phases"]["worker"].update(initial="limbo"),
         "is not defined"),
        (lambda s: s["phases"]["worker"]["transitions"]["idle"]
         .update({"send HELLO": "idle"}), "outside its send set"),
        (lambda s: s["phases"]["worker"]["transitions"]["idle"]
         .update({"recv KERNEL_CALL": "idle"}),
         "its peer cannot send"),
        (lambda s: s["phases"]["worker"]["transitions"]["idle"]
         .update({"yell ERROR": "idle"}), "bad event"),
        (lambda s: s["phases"]["worker"]["transitions"]["idle"]
         .update({"recv RESTORE": "limbo"}), "undefined state"),
    ])
    def test_tampered_spec_is_rejected(self, mutate, needle):
        spec = copy.deepcopy(load_spec())
        mutate(spec)
        with pytest.raises(WireProtoError, match=needle):
            validate_spec(spec)

    def test_malformed_json_is_rejected(self, tmp_path):
        bad = tmp_path / "wire_proto.json"
        bad.write_text("{not json")
        with pytest.raises(WireProtoError, match="not valid JSON"):
            load_spec(bad)

    def test_tampered_file_is_rejected(self, tmp_path):
        spec = copy.deepcopy(load_spec())
        del spec["roles"]["worker"]
        bad = tmp_path / "wire_proto.json"
        bad.write_text(json.dumps(spec))
        with pytest.raises(WireProtoError):
            load_spec(bad)


class TestPhaseMachines:
    """The phase machines exercise the whole frame vocabulary."""

    @pytest.mark.parametrize("role", ROLES)
    def test_machine_uses_every_send_and_recv_frame(self, role):
        spec = load_spec()
        machine = spec["phases"][role]
        sent, received = set(), set()
        for edges in machine["transitions"].values():
            for event in edges:
                direction, _, frame = event.partition(" ")
                (sent if direction == "send" else received).add(frame)
        assert sent == set(spec["roles"][role]["sends"])
        assert received == receivable(spec, role)

    @pytest.mark.parametrize("role", ROLES)
    def test_terminal_states_have_no_outgoing_edges(self, role):
        machine = load_spec()["phases"][role]
        for terminal in machine["terminal"]:
            assert terminal not in machine["transitions"]


# -- lockstep with the real tree ----------------------------------------------


class TestRealTreeLockstep:
    @pytest.mark.parametrize("role", ROLES)
    def test_send_sites_match_spec_exactly(self, role):
        spec = load_spec()
        sites = extract_role(role, spec=spec)
        assert sites.sent_frames() == set(spec["roles"][role]["sends"])

    @pytest.mark.parametrize("role", ROLES)
    def test_every_receivable_frame_is_handled(self, role):
        spec = load_spec()
        sites = extract_role(role, spec=spec)
        assert receivable(spec, role) <= sites.handled_frames()

    def test_sites_carry_locations(self):
        sites = extract_role("worker")
        assert sites.sends and sites.handles
        assert all(site.line >= 1 and site.col >= 1
                   for site in sites.sends + sites.handles)


# -- the P rules on synthetic modules -----------------------------------------


SYNTH_SPEC = {
    "format": "repro.wire_proto/1",
    "roles": {
        "client": {"module": "x/client.py", "peer": "server",
                   "frames": "verbs", "sends": ["ping"]},
        "server": {"module": "x/server.py", "peer": "client",
                   "frames": "verbs", "sends": ["pong"]},
    },
    "pairs": [
        {"requester": "client", "request": "ping",
         "replies": ["pong"]},
    ],
}


class TestPRules:
    def test_synthetic_spec_is_valid(self):
        validate_spec(SYNTH_SPEC)

    def test_clean_role_has_no_findings(self):
        source = ("def run(ch):\n"
                  "    ch.send((\"ping\", 1))\n"
                  "    msg = ch.recv()\n"
                  "    if msg[0] == \"pong\":\n"
                  "        return msg\n")
        assert _lint(source, "x/client.py", SYNTH_SPEC) == []

    def test_p001_unknown_send(self):
        source = ("def run(ch):\n"
                  "    ch.send((\"ping\", 1))\n"
                  "    ch.send((\"rogue\",))\n"
                  "    msg = ch.recv()\n"
                  "    if msg[0] == \"pong\":\n"
                  "        return msg\n")
        findings = _lint(source, "x/client.py", SYNTH_SPEC)
        assert [f.rule for f in findings] == ["P001"]
        assert findings[0].line == 3
        assert "`rogue`" in findings[0].message

    def test_p002_unhandled_receivable(self):
        source = ("def run(ch):\n"
                  "    ch.send((\"ping\", 1))\n")
        findings = _lint(source, "x/client.py", SYNTH_SPEC)
        assert [f.rule for f in findings] == ["P002"]
        assert "`pong`" in findings[0].message

    def test_p003_request_without_reply_site(self):
        source = ("def serve(ch):\n"
                  "    msg = ch.recv()\n"
                  "    if msg[0] == \"ping\":\n"
                  "        return msg\n")
        findings = _lint(source, "x/server.py", SYNTH_SPEC)
        assert [f.rule for f in findings] == ["P003"]
        assert findings[0].line == 3
        assert "block forever" in findings[0].message

    def test_unhandled_request_is_p002_not_p003(self):
        # A server that ignores the request entirely gets exactly one
        # finding: P002 already says it all, P003 would be noise.
        source = ("def serve(ch):\n"
                  "    ch.send((\"pong\", 2))\n")
        findings = _lint(source, "x/server.py", SYNTH_SPEC)
        assert [f.rule for f in findings] == ["P002"]

    def test_justified_allow_suppresses_p001(self):
        source = ("def run(ch):\n"
                  "    ch.send((\"ping\", 1))\n"
                  "    ch.send((\"rogue\",))"
                  "  # check: allow P001 -- legacy probe\n"
                  "    msg = ch.recv()\n"
                  "    if msg[0] == \"pong\":\n"
                  "        return msg\n")
        assert _lint(source, "x/client.py", SYNTH_SPEC) == []

    def test_bare_allow_does_not_suppress_p001(self):
        source = ("def run(ch):\n"
                  "    ch.send((\"ping\", 1))\n"
                  "    ch.send((\"rogue\",))  # check: allow P001\n"
                  "    msg = ch.recv()\n"
                  "    if msg[0] == \"pong\":\n"
                  "        return msg\n")
        rules = sorted(f.rule for f in
                       _lint(source, "x/client.py", SYNTH_SPEC))
        assert rules == ["P001", "W002"]

    def test_scopes_restrict_extraction(self):
        # Only functions the spec names for the role are inspected:
        # the other role's half of a shared module stays invisible.
        spec = copy.deepcopy(SYNTH_SPEC)
        spec["roles"]["client"]["scopes"] = ["run"]
        source = ("def run(ch):\n"
                  "    ch.send((\"ping\", 1))\n"
                  "    msg = ch.recv()\n"
                  "    if msg[0] == \"pong\":\n"
                  "        return msg\n"
                  "def other_half(ch):\n"
                  "    ch.send((\"rogue\",))\n")
        sites = extract_sites(ast.parse(source), spec, "client")
        assert sites.sent_frames() == {"ping"}


class TestEnumModeIntegration:
    def test_lint_file_flags_wrong_side_send(self, tmp_path):
        # A module living at the coordinator's spec path but sending a
        # worker frame: P001 through the ordinary lint_file pipeline.
        from repro.check.lint import lint_file
        module = tmp_path / "distrib" / "coordinator.py"
        module.parent.mkdir()
        module.write_text(
            "def drive(ch):\n"
            "    ch.send(FrameKind.KERNEL_CALL)\n")
        findings = lint_file(module, root=tmp_path)
        p001 = [f for f in findings if f.rule == "P001"]
        assert len(p001) == 1
        assert "`KERNEL_CALL`" in p001[0].message
        assert p001[0].line == 2
        # ...and the peer's whole send set is reported unhandled.
        spec = load_spec()
        p002 = [f for f in findings if f.rule == "P002"]
        assert len(p002) == len(receivable(spec, "coordinator"))

    def test_real_modules_are_clean_via_lint_file(self):
        from repro.check.lint import lint_file
        root = package_root()
        for rel in sorted(spec_modules(load_spec())):
            findings = lint_file(root / rel)
            assert findings == [], \
                "\n".join(f.render() for f in findings)
