"""The flight recorder on the recovery path: crash forensics for runs.

A SIGKILLed mp worker triggers the recovery loop; with
``telemetry.flight_dir`` set the loop first dumps the coordinator's
ring — recent events plus the last wire-frame summaries — before
restoring.  The ring is a pure observer, so arming it must not change
the recovered result.
"""

from __future__ import annotations

import dataclasses
import os
import signal

from repro.ckpt.recovery import run_with_recovery
from repro.common.config import SimulationConfig
from repro.obs.flight import load_bundles
from repro.sim.runner import create_simulator


def _config(ckpt_dir, flight_dir, enabled: bool = False
            ) -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=4, seed=7)
    cfg.host.num_machines = 2
    cfg.host.cores_per_machine = 2
    cfg.host.quantum_instructions = 100
    cfg.distrib.backend = "mp"
    cfg.ckpt.dir = str(ckpt_dir)
    cfg.ckpt.every = 4
    cfg.ckpt.backoff_base = 0.01
    cfg.telemetry.enabled = enabled
    if enabled:
        cfg.telemetry.events = ["worker", "obs"]
    cfg.telemetry.flight_dir = str(flight_dir)
    cfg.validate()
    return cfg


def _fatal_program(ctx, marker):
    yield from ctx.compute(3000)
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("went down here")
        os.kill(os.getpid(), signal.SIGKILL)
    yield from ctx.compute(200)
    return "survived"


def test_crash_dumps_a_flight_bundle_with_telemetry_off(tmp_path):
    """The mask-0 ring: no trace recorded anywhere, yet the crash
    still leaves a forensics bundle with the lead-up events."""
    marker = str(tmp_path / "died-once")
    flight_dir = tmp_path / "flight"
    simulator = create_simulator(
        _config(tmp_path / "ck", flight_dir))
    result, final = run_with_recovery(simulator, _fatal_program,
                                      (marker,))
    assert result.main_result == "survived"
    assert len(result.recoveries) == 1
    bundles = load_bundles(str(flight_dir))
    assert len(bundles) == 1
    (bundle,) = bundles
    assert bundle["reason"] == "WorkerCrashError"
    assert bundle["detail"]
    # Nothing was recorded on the bus itself: pure observation.
    assert final.telemetry is None or final.telemetry.events == []


def test_crash_bundle_carries_events_when_telemetry_on(tmp_path):
    marker = str(tmp_path / "died-once")
    flight_dir = tmp_path / "flight"
    simulator = create_simulator(
        _config(tmp_path / "ck", flight_dir, enabled=True))
    result, _final = run_with_recovery(simulator, _fatal_program,
                                       (marker,))
    assert len(result.recoveries) == 1
    (bundle,) = load_bundles(str(flight_dir))
    assert bundle["reason"] == "WorkerCrashError"
    assert bundle["events"], "ring should hold the lead-up events"


def test_armed_ring_leaves_the_recovered_result_unchanged(tmp_path):
    """Byte-level: recovery with the recorder armed equals recovery
    without it (the ring is invisible to the simulation)."""
    def recovered(sub: str, flight: bool):
        marker = str(tmp_path / f"{sub}-died")
        cfg = _config(tmp_path / f"{sub}-ck",
                      tmp_path / f"{sub}-flight")
        if not flight:
            cfg.telemetry.flight_dir = ""
        result, _ = run_with_recovery(
            create_simulator(cfg), _fatal_program, (marker,))
        data = dataclasses.asdict(result)
        data.pop("recoveries")
        return data

    assert recovered("armed", True) == recovered("bare", False)
