"""Fault tolerance: SIGKILL an mp worker mid-run, recover, finish.

The headline robustness claim: a worker process dying under the mp
backend does not lose the run — the recovery loop restores every shard
from the last consistent checkpoint, restarts workers, and the final
metrics equal an uninterrupted run's exactly.
"""

from __future__ import annotations

import dataclasses
import os
import signal

import pytest

from repro.common.config import SimulationConfig
from repro.common.errors import CheckpointError
from repro.ckpt.recovery import run_with_recovery
from repro.distrib.errors import WorkerCrashError
from repro.sim.runner import create_simulator


def _config(ckpt_dir=None, every: int = 0) -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=4, seed=7)
    cfg.host.num_machines = 2
    cfg.host.cores_per_machine = 2
    cfg.host.quantum_instructions = 100
    cfg.distrib.backend = "mp"
    if ckpt_dir is not None:
        cfg.ckpt.dir = str(ckpt_dir)
        cfg.ckpt.every = every
        cfg.ckpt.backoff_base = 0.01  # keep test restarts snappy
    cfg.validate()
    return cfg


def _fatal_program(ctx, marker):
    """Work, then SIGKILL the hosting process once (first run only).

    The kill branch performs no simulated ops, so the op stream is
    identical whether the marker pre-exists (baseline) or is created on
    the way down (crash run) — which is what makes the baseline a valid
    byte-level reference for the recovered run.
    """
    yield from ctx.compute(3000)
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("went down here")
        os.kill(os.getpid(), signal.SIGKILL)
    yield from ctx.compute(200)
    return "survived"


def _always_fatal_program(ctx):
    """SIGKILL the hosting worker on every attempt — unrecoverable."""
    yield from ctx.compute(3000)
    os.kill(os.getpid(), signal.SIGKILL)
    yield  # pragma: no cover


def test_killed_worker_recovers_to_identical_metrics(tmp_path):
    marker = str(tmp_path / "already-died")
    with open(marker, "w") as fh:  # baseline: take the survivor path
        fh.write("baseline")
    baseline = create_simulator(_config()).run(
        _fatal_program, (marker,))
    assert baseline.main_result == "survived"

    crash_marker = str(tmp_path / "crash-run-died")
    simulator = create_simulator(_config(tmp_path / "ck", every=4))
    result, final = run_with_recovery(simulator, _fatal_program,
                                      (crash_marker,))
    assert os.path.exists(crash_marker), "the worker never died"
    assert final is not simulator  # a restored instance finished

    assert len(result.recoveries) == 1
    event = result.recoveries[0]
    assert event["error"] == "WorkerCrashError"
    assert event["attempt"] == 1
    assert event["turn"] > 0
    assert event["backoff_seconds"] > 0

    resumed = dataclasses.asdict(result)
    resumed.pop("recoveries")
    expected = dataclasses.asdict(baseline)
    expected.pop("recoveries")
    assert resumed == expected


def test_recovery_emits_telemetry_event(tmp_path):
    marker = str(tmp_path / "died-once")
    cfg = _config(tmp_path / "ck", every=4)
    cfg.telemetry.enabled = True
    cfg.telemetry.events = ["worker"]
    cfg.validate()
    result, final = run_with_recovery(
        create_simulator(cfg), _fatal_program, (marker,))
    assert len(result.recoveries) == 1
    recovery_events = [e for e in final.telemetry.events
                       if e.name == "recovery"]
    assert len(recovery_events) == 1
    assert recovery_events[0].args["error"] == "WorkerCrashError"


def test_crash_without_checkpoint_is_not_recoverable(tmp_path):
    """every=0 writes no periodic snapshots: a crash then has nothing
    to restore from, and the failure says so instead of retrying."""
    marker = str(tmp_path / "died")
    simulator = create_simulator(_config(tmp_path / "ck", every=0))
    with pytest.raises(CheckpointError, match="cannot recover"):
        run_with_recovery(simulator, _fatal_program, (marker,))


def test_retry_budget_exhaustion_raises_original_failure(tmp_path):
    """A worker that dies on every attempt exhausts max_restarts and
    the last crash propagates."""
    cfg = _config(tmp_path / "ck", every=4)
    cfg.ckpt.max_restarts = 1
    cfg.validate()
    with pytest.raises(WorkerCrashError):
        run_with_recovery(create_simulator(cfg), _always_fatal_program)


def test_crash_without_ckpt_enabled_propagates(tmp_path):
    """run_with_recovery degrades to plain run() when ckpt is off."""
    marker = str(tmp_path / "died")
    simulator = create_simulator(_config())
    with pytest.raises(WorkerCrashError):
        run_with_recovery(simulator, _fatal_program, (marker,))
