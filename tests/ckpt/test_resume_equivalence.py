"""The acceptance bar of repro.ckpt: resume is byte-identical.

Checkpointing must be invisible twice over: enabling it must not
perturb an undisturbed run, and a run continued from a snapshot must
produce a ``SimulationResult`` byte-for-byte equal to the
uninterrupted run's — on both execution backends.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.common.config import SimulationConfig
from repro.common.errors import CheckpointError, ConfigError
from repro.ckpt.recovery import load_checkpoint
from repro.ckpt.store import FORMAT, CheckpointStore
from repro.distrib.wire import WorkloadRef
from repro.sim.runner import create_simulator

REF = WorkloadRef("matrix_multiply", nthreads=4, scale=0.05)

BACKENDS = ["inproc", "mp"]


def _config(backend: str, ckpt_dir=None, every: int = 0,
            seed: int = 11) -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=4, seed=seed)
    cfg.host.num_machines = 2
    cfg.host.cores_per_machine = 2
    cfg.host.quantum_instructions = 200
    cfg.distrib.backend = backend
    if ckpt_dir is not None:
        cfg.ckpt.dir = str(ckpt_dir)
        cfg.ckpt.every = every
    cfg.validate()
    return cfg


def _asdict(result) -> dict:
    return dataclasses.asdict(result)


@pytest.mark.parametrize("backend", BACKENDS)
def test_checkpointing_does_not_perturb_results(backend, tmp_path):
    baseline = create_simulator(_config(backend)).run(REF)
    ckpt = create_simulator(
        _config(backend, tmp_path / "ck", every=20)).run(REF)
    assert _asdict(ckpt) == _asdict(baseline)


@pytest.mark.parametrize("backend", BACKENDS)
def test_resume_is_byte_identical(backend, tmp_path):
    """Checkpoint mid-run, restore into a fresh simulator, continue:
    the result must equal the uninterrupted run's, field for field."""
    baseline = create_simulator(_config(backend)).run(REF)

    ckpt_dir = tmp_path / "ck"
    create_simulator(_config(backend, ckpt_dir, every=20)).run(REF)
    store = CheckpointStore(str(ckpt_dir))
    assert store.list(), "periodic hook never wrote a checkpoint"

    restored, manifest = load_checkpoint(str(ckpt_dir))
    assert manifest["format"] == FORMAT
    assert manifest["backend"] == backend
    assert manifest["turn"] > 0
    resumed = restored.resume_run()
    assert _asdict(resumed) == _asdict(baseline)


def test_resume_from_specific_snapshot(tmp_path):
    """Every retained snapshot resumes identically, not just LATEST,
    and a direct path to one ``ckpt-NNNNNNNN`` directory works."""
    baseline = create_simulator(_config("inproc")).run(REF)
    ckpt_dir = tmp_path / "ck"
    cfg = _config("inproc", ckpt_dir, every=10)
    cfg.ckpt.keep = 4
    create_simulator(cfg).run(REF)
    names = CheckpointStore(str(ckpt_dir)).list()
    assert len(names) >= 2
    for name in names:
        restored, manifest = load_checkpoint(str(ckpt_dir), name)
        assert f"{manifest['turn']:08d}" in name
        assert _asdict(restored.resume_run()) == _asdict(baseline)
    # A path straight at one snapshot directory is also accepted.
    restored, _ = load_checkpoint(str(ckpt_dir / names[0]))
    assert _asdict(restored.resume_run()) == _asdict(baseline)


def test_manual_save_and_restored_state_consistency(tmp_path):
    """save_checkpoint() after a run snapshots the finished state; a
    restored simulator still passes the coherence audit."""
    cfg = _config("inproc", tmp_path / "ck")
    sim = create_simulator(cfg)
    sim.run(REF)
    path = sim.save_checkpoint()
    assert os.path.isdir(path)
    restored, _ = load_checkpoint(str(tmp_path / "ck"))
    restored.engine.check_coherence_invariants()


def test_corrupted_snapshot_is_rejected_on_load(tmp_path):
    ckpt_dir = tmp_path / "ck"
    create_simulator(_config("inproc", ckpt_dir, every=20)).run(REF)
    name = CheckpointStore(str(ckpt_dir)).latest()
    blob_path = ckpt_dir / name / "coordinator.pkl"
    blob = bytearray(blob_path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    blob_path.write_bytes(bytes(blob))
    with pytest.raises(CheckpointError, match="corrupt"):
        load_checkpoint(str(ckpt_dir))


def test_save_checkpoint_requires_enablement():
    sim = create_simulator(_config("inproc"))
    with pytest.raises(CheckpointError, match="not enabled"):
        sim.save_checkpoint()


def test_ckpt_every_requires_dir():
    cfg = SimulationConfig(num_tiles=2)
    cfg.ckpt.every = 10
    with pytest.raises(ConfigError):
        cfg.validate()


def test_ckpt_rejects_host_profiling():
    """Profiling rebinds methods with closures — unpicklable; the
    combination must fail loudly at validate time, not at snapshot
    time deep inside a run."""
    cfg = SimulationConfig(num_tiles=2)
    cfg.ckpt.dir = "/tmp/never-used"
    cfg.profile.enabled = True
    with pytest.raises(ConfigError, match="profil"):
        cfg.validate()


def test_config_roundtrips_ckpt_section(tmp_path):
    cfg = _config("inproc", tmp_path / "ck", every=5)
    cfg.ckpt.max_restarts = 7
    clone = SimulationConfig.from_dict(cfg.to_dict())
    assert clone.ckpt.dir == str(tmp_path / "ck")
    assert clone.ckpt.every == 5
    assert clone.ckpt.max_restarts == 7
    assert clone.ckpt.enabled
