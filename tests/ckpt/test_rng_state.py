"""Property tests: RNG stream snapshots resume the exact sequence."""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import RngStreams

_NAMES = ["sched", "lax_p2p", "data", "jitter"]

seeds = st.integers(min_value=0, max_value=2 ** 32 - 1)
#: A draw plan: which stream to pull from, and how many values.
plans = st.lists(st.tuples(st.sampled_from(_NAMES),
                           st.integers(min_value=1, max_value=16)),
                 max_size=12)


def _draw(streams: RngStreams, plan) -> list:
    out = []
    for name, count in plan:
        rng = streams.stream(name)
        out.extend(rng.random() for _ in range(count))
    return out


@settings(max_examples=60, deadline=None)
@given(seed=seeds, warmup=plans, tail=plans)
def test_restored_family_continues_every_sequence(seed, warmup, tail):
    """state() mid-run, restore() elsewhere => identical continuation,
    including streams first touched only after the snapshot (derived
    fresh from the restored master seed)."""
    original = RngStreams(seed)
    _draw(original, warmup)
    snapshot = original.state()

    restored = RngStreams(seed + 1)  # wrong seed: restore must fix it
    restored.stream("stale")         # leftover stream: must be dropped
    restored.restore(snapshot)
    assert restored.seed == seed
    assert "stale" not in restored._streams

    assert _draw(original, tail) == _draw(restored, tail)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, warmup=plans)
def test_snapshot_is_immune_to_later_draws(seed, warmup):
    """The snapshot is a value, not a live view: draws on the original
    after state() never move the restore point."""
    original = RngStreams(seed)
    _draw(original, warmup)
    snapshot = original.state()
    reference = RngStreams(0)
    reference.restore(snapshot)
    expected = [reference.stream(name).random() for name in _NAMES]

    _draw(original, [(name, 3) for name in _NAMES])  # perturb
    restored = RngStreams(0)
    restored.restore(snapshot)
    assert [restored.stream(name).random() for name in _NAMES] \
        == expected


@settings(max_examples=40, deadline=None)
@given(seed=seeds, warmup=plans, tail=plans)
def test_family_survives_pickle_mid_sequence(seed, warmup, tail):
    """The whole family rides inside the simulator snapshot as a plain
    pickle; that path must preserve sequences exactly too."""
    original = RngStreams(seed)
    _draw(original, warmup)
    clone = pickle.loads(pickle.dumps(original))
    assert _draw(original, tail) == _draw(clone, tail)


def test_restore_preserves_creation_order():
    """Stream creation order is part of determinism (dict iteration
    order feeds the snapshot); restore must reproduce it."""
    streams = RngStreams(7)
    for name in ("c", "a", "b"):
        streams.stream(name)
    restored = RngStreams(0)
    restored.restore(streams.state())
    assert list(restored._streams) == ["c", "a", "b"]
