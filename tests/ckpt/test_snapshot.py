"""The surgical pickler: sharing preserved, observers excised."""

from __future__ import annotations

import threading

import pytest

from repro.common.config import SimulationConfig
from repro.common.errors import CheckpointError
from repro.ckpt.snapshot import load_bytes, snapshot_bytes


def test_shared_references_survive_the_roundtrip():
    """Whole-graph pickling must keep aliases aliased — the scheduler's
    thread table and the stats tree rely on it."""
    shared = [1, 2, 3]
    clone = load_bytes(snapshot_bytes({"a": shared, "b": shared}))
    assert clone["a"] == [1, 2, 3]
    assert clone["a"] is clone["b"]


def test_generators_are_excised_to_none():
    gen = (x for x in range(3))
    clone = load_bytes(snapshot_bytes({"gen": gen, "n": 7}))
    assert clone["gen"] is None
    assert clone["n"] == 7


def test_telemetry_bus_and_channels_are_excised():
    from repro.telemetry.bus import create_bus
    from repro.telemetry.events import EventCategory

    cfg = SimulationConfig(num_tiles=2)
    cfg.telemetry.enabled = True
    cfg.validate()
    bus = create_bus(cfg.telemetry)
    assert bus is not None
    channel = bus.channel(EventCategory.NETWORK)
    clone = load_bytes(snapshot_bytes(
        {"bus": bus, "channel": channel, "kept": "data"}))
    assert clone["bus"] is None
    assert clone["channel"] is None
    assert clone["kept"] == "data"


def test_excised_none_matches_disabled_convention():
    """An observer slot excised to None reads exactly like a run that
    never enabled the observer — code guards on ``is not None``."""
    from repro.telemetry.bus import create_bus

    cfg = SimulationConfig(num_tiles=2)
    cfg.telemetry.enabled = True
    cfg.validate()
    clone = load_bytes(snapshot_bytes(
        {"telemetry": create_bus(cfg.telemetry)}))
    disabled = create_bus(SimulationConfig(num_tiles=2).telemetry)
    assert clone["telemetry"] is disabled is None


def test_unpicklable_state_surfaces_checkpoint_error():
    with pytest.raises(CheckpointError):
        snapshot_bytes({"lock": threading.Lock()})


def test_plain_state_pickles_without_loading_observers():
    """Excision looks classes up lazily in ``sys.modules``: snapshotting
    data must not import subsystems the run never used."""
    import pathlib
    import subprocess
    import sys

    code = (
        "import sys\n"
        "sys.path.insert(0, 'src')\n"
        "from repro.ckpt.snapshot import snapshot_bytes\n"
        "snapshot_bytes({'n': 1})\n"
        "assert 'repro.distrib.worker' not in sys.modules\n"
        "assert 'repro.distrib.coordinator' not in sys.modules\n"
        "assert 'repro.check.sanitize' not in sys.modules\n"
    )
    root = pathlib.Path(__file__).resolve().parents[2]
    subprocess.run([sys.executable, "-c", code], check=True,
                   cwd=str(root))
