"""The on-disk ``repro.ckpt/1`` store: atomicity, integrity, pruning."""

from __future__ import annotations

import json
import os

import pytest

from repro.common.config import SimulationConfig
from repro.common.errors import CheckpointError
from repro.ckpt.store import FORMAT, CheckpointStore


def _config() -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=2)
    cfg.validate()
    return cfg


def _write(store: CheckpointStore, turn: int,
           blob: bytes = b"coordinator-state") -> str:
    return store.write(turn=turn, backend="inproc", config=_config(),
                       blobs={"coordinator": blob})


def test_write_read_roundtrip(tmp_path):
    store = CheckpointStore(str(tmp_path))
    path = _write(store, 40, b"state-at-40")
    assert os.path.basename(path) == "ckpt-00000040"
    manifest, blobs = store.read()
    assert manifest["format"] == FORMAT
    assert manifest["turn"] == 40
    assert manifest["backend"] == "inproc"
    assert manifest["config"] == _config().to_dict()
    assert blobs == {"coordinator": b"state-at-40"}


def test_shard_blobs_travel_with_the_coordinator(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.write(turn=8, backend="mp", config=_config(),
                blobs={"coordinator": b"coord", "shard0": b"s0",
                       "shard1": b"s1"})
    manifest, blobs = store.read()
    assert sorted(blobs) == ["coordinator", "shard0", "shard1"]
    assert sorted(manifest["files"]) == [
        "coordinator.pkl", "shard0.pkl", "shard1.pkl"]
    for meta in manifest["files"].values():
        assert set(meta) == {"sha256", "size"}


def test_latest_pointer_tracks_newest(tmp_path):
    store = CheckpointStore(str(tmp_path))
    assert store.latest() is None
    _write(store, 20)
    _write(store, 60)
    assert store.latest() == "ckpt-00000060"
    manifest, _ = store.read()
    assert manifest["turn"] == 60


def test_latest_falls_back_when_pointer_is_stale(tmp_path):
    store = CheckpointStore(str(tmp_path))
    _write(store, 20)
    with open(tmp_path / "LATEST", "w") as fh:
        fh.write("ckpt-99999999\n")  # points at nothing
    assert store.latest() == "ckpt-00000020"


def test_prune_keeps_only_newest(tmp_path):
    store = CheckpointStore(str(tmp_path), keep=2)
    for turn in (10, 20, 30, 40):
        _write(store, turn)
    assert store.list() == ["ckpt-00000030", "ckpt-00000040"]
    # The survivors are still fully readable.
    manifest, _ = store.read("ckpt-00000030")
    assert manifest["turn"] == 30


def test_rewriting_same_turn_replaces_cleanly(tmp_path):
    store = CheckpointStore(str(tmp_path))
    _write(store, 20, b"first")
    _write(store, 20, b"second")
    _, blobs = store.read("ckpt-00000020")
    assert blobs["coordinator"] == b"second"


def test_missing_root_reports_no_checkpoint(tmp_path):
    store = CheckpointStore(str(tmp_path / "empty"))
    with pytest.raises(CheckpointError, match="no checkpoint"):
        store.read()


def test_corrupt_blob_is_rejected(tmp_path):
    store = CheckpointStore(str(tmp_path))
    path = _write(store, 20, b"pristine")
    with open(os.path.join(path, "coordinator.pkl"), "wb") as fh:
        fh.write(b"Xristine")  # same size, different bytes
    with pytest.raises(CheckpointError, match="corrupt"):
        store.read()


def test_truncated_blob_is_rejected(tmp_path):
    store = CheckpointStore(str(tmp_path))
    path = _write(store, 20, b"full-length-state")
    manifest_path = os.path.join(path, "manifest.json")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    # Forge the checksum so only the size check can object.
    import hashlib
    short = b"full"
    meta = manifest["files"]["coordinator.pkl"]
    meta["sha256"] = hashlib.sha256(short).hexdigest()
    with open(manifest_path, "w") as fh:
        json.dump(manifest, fh)
    with open(os.path.join(path, "coordinator.pkl"), "wb") as fh:
        fh.write(short)
    with pytest.raises(CheckpointError, match="truncated"):
        store.read()


def test_unknown_format_version_is_rejected(tmp_path):
    store = CheckpointStore(str(tmp_path))
    path = _write(store, 20)
    manifest_path = os.path.join(path, "manifest.json")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    manifest["format"] = "repro.ckpt/99"
    with open(manifest_path, "w") as fh:
        json.dump(manifest, fh)
    with pytest.raises(CheckpointError, match="unsupported"):
        store.read()


def test_checkpoint_without_coordinator_is_rejected(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.write(turn=4, backend="mp", config=_config(),
                blobs={"shard0": b"orphan"})
    with pytest.raises(CheckpointError, match="coordinator"):
        store.read()


def test_half_written_staging_dir_is_invisible(tmp_path):
    """A crash mid-write leaves only a ``.tmp`` dir, which readers and
    ``list()`` never see."""
    store = CheckpointStore(str(tmp_path))
    _write(store, 20)
    os.makedirs(tmp_path / "ckpt-00000040.tmp")
    assert store.list() == ["ckpt-00000020"]
    assert store.latest() == "ckpt-00000020"
