"""Configuration validation and (de)serialisation."""

import dataclasses

import pytest

from repro.common.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    HostConfig,
    MemoryConfig,
    NetworkConfig,
    SimulationConfig,
    SyncConfig,
)
from repro.common.errors import ConfigError
from repro.common.units import GB, KB, MB


class TestTable1Defaults:
    """The defaults must match Table 1 of the paper."""

    def test_clock_is_1ghz(self):
        assert CoreConfig().clock_hz == 1_000_000_000

    def test_l1_geometry(self):
        cfg = MemoryConfig()
        for l1 in (cfg.l1i, cfg.l1d):
            assert l1.size_bytes == 32 * KB
            assert l1.line_bytes == 64
            assert l1.associativity == 8

    def test_l2_geometry(self):
        l2 = MemoryConfig().l2
        assert l2.size_bytes == 3 * MB
        assert l2.line_bytes == 64
        assert l2.associativity == 24

    def test_coherence_is_full_map_directory(self):
        assert MemoryConfig().directory_type == "full_map"

    def test_dram_bandwidth(self):
        assert DramConfig().total_bandwidth_bytes_per_s == \
            pytest.approx(5.13 * GB)

    def test_interconnect_is_mesh(self):
        net = NetworkConfig()
        assert net.user_model == "mesh"
        assert net.memory_model == "mesh"

    def test_system_traffic_uses_magic_network(self):
        assert NetworkConfig().system_model == "magic"

    def test_paper_sync_study_parameters(self):
        sync = SyncConfig()
        assert sync.barrier_interval == 1000
        assert sync.p2p_slack == 100_000


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(size_bytes=32 * KB, line_bytes=64,
                          associativity=8)
        assert cfg.num_sets == 64

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            CacheConfig(line_bytes=48).validate()

    def test_rejects_zero_associativity(self):
        with pytest.raises(ConfigError):
            CacheConfig(associativity=0).validate()

    def test_rejects_size_not_multiple_of_way_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, line_bytes=64,
                        associativity=4).validate()

    def test_single_line_cache_is_valid(self):
        CacheConfig(size_bytes=64, line_bytes=64,
                    associativity=1).validate()


class TestMemoryConfig:
    def test_rejects_unknown_directory(self):
        cfg = MemoryConfig(directory_type="snooping")
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_rejects_l1_l2_line_mismatch(self):
        cfg = MemoryConfig()
        cfg.l1d.line_bytes = 32
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_line_mismatch_allowed_when_l1_disabled(self):
        cfg = MemoryConfig()
        cfg.l1d.enabled = False
        cfg.l1i.enabled = False
        cfg.l1d.line_bytes = 32
        cfg.l1i.line_bytes = 32
        cfg.validate()


class TestHostConfig:
    def test_default_is_one_8core_machine(self):
        host = HostConfig()
        assert host.num_machines == 1
        assert host.cores_per_machine == 8

    def test_processes_default_to_one_per_machine(self):
        host = HostConfig(num_machines=4)
        assert host.resolved_processes() == 4

    def test_total_cores(self):
        assert HostConfig(num_machines=8).total_cores == 64

    def test_rejects_fewer_processes_than_machines(self):
        host = HostConfig(num_machines=4, num_processes=2)
        with pytest.raises(ConfigError):
            host.validate()

    def test_rejects_bad_jitter(self):
        with pytest.raises(ConfigError):
            HostConfig(jitter=1.5).validate()


class TestSyncConfig:
    @pytest.mark.parametrize("model", ["lax", "lax_barrier", "lax_p2p"])
    def test_all_three_models_valid(self, model):
        SyncConfig(model=model).validate()

    def test_rejects_unknown_model(self):
        with pytest.raises(ConfigError):
            SyncConfig(model="cycle_accurate").validate()

    def test_rejects_zero_barrier_interval(self):
        with pytest.raises(ConfigError):
            SyncConfig(barrier_interval=0).validate()


class TestSerialisation:
    def test_round_trip_preserves_everything(self):
        original = SimulationConfig(num_tiles=64, seed=7)
        original.sync.model = "lax_p2p"
        original.memory.directory_type = "limitless"
        original.host.num_machines = 4
        restored = SimulationConfig.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()

    def test_partial_dict_applies_defaults(self):
        cfg = SimulationConfig.from_dict({"num_tiles": 16})
        assert cfg.num_tiles == 16
        assert cfg.memory.l2.size_bytes == 3 * MB

    def test_nested_cache_section(self):
        cfg = SimulationConfig.from_dict({
            "memory": {"l2": {"size_bytes": 1 * MB, "associativity": 4},
                       "l1i": {"enabled": False},
                       "l1d": {"enabled": False}},
        })
        assert cfg.memory.l2.size_bytes == 1 * MB
        assert not cfg.memory.l1d.enabled

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig.from_dict({"core": {"pipeline_width": 4}})

    def test_copy_is_independent(self):
        cfg = SimulationConfig()
        clone = cfg.copy()
        clone.memory.l2.size_bytes = 1 * MB
        assert cfg.memory.l2.size_bytes == 3 * MB

    def test_validate_called_on_from_dict(self):
        with pytest.raises(ConfigError):
            SimulationConfig.from_dict({"num_tiles": 0})

    def test_to_dict_is_plain_data(self):
        data = SimulationConfig().to_dict()
        assert isinstance(data, dict)
        assert not dataclasses.is_dataclass(data["memory"])


class TestContentHash:
    """``content_hash()`` is the cache key of the serve result store:
    equal semantics must hash equal, any semantic change must not."""

    def test_equal_configs_hash_equal(self):
        assert SimulationConfig(num_tiles=8, seed=3).content_hash() \
            == SimulationConfig(num_tiles=8, seed=3).content_hash()

    def test_copy_hashes_equal(self):
        cfg = SimulationConfig(num_tiles=16, seed=5)
        cfg.sync.model = "lax_barrier"
        assert cfg.copy().content_hash() == cfg.content_hash()

    @pytest.mark.parametrize("mutate", [
        lambda c: setattr(c, "seed", c.seed + 1),
        lambda c: setattr(c, "num_tiles", c.num_tiles * 2),
        lambda c: setattr(c.sync, "model", "lax_p2p"),
        lambda c: setattr(c.memory.l2, "size_bytes", 1 * MB),
        lambda c: setattr(c.memory, "directory_type", "limited"),
        lambda c: setattr(c.network, "memory_model", "analytical"),
        lambda c: setattr(c.host, "quantum_instructions", 123),
    ])
    def test_any_semantic_field_change_changes_the_hash(self, mutate):
        base = SimulationConfig(num_tiles=8, seed=3)
        changed = base.copy()
        mutate(changed)
        assert changed.content_hash() != base.content_hash()

    @pytest.mark.parametrize("mutate", [
        lambda c: setattr(c.distrib, "backend", "mp"),
        lambda c: setattr(c.telemetry, "enabled", True),
        lambda c: setattr(c.check, "sanitize", True),
        lambda c: setattr(c.profile, "enabled", True),
        lambda c: setattr(c.ckpt, "dir", "/tmp/ckpt-here"),
    ])
    def test_observational_sections_do_not_change_the_hash(self, mutate):
        base = SimulationConfig(num_tiles=8, seed=3)
        changed = base.copy()
        mutate(changed)
        assert changed.content_hash() == base.content_hash()

    def test_semantic_dict_drops_only_observational_sections(self):
        from repro.common.config import OBSERVATIONAL_SECTIONS
        cfg = SimulationConfig()
        semantic = cfg.semantic_dict()
        full = cfg.to_dict()
        assert set(full) - set(semantic) == set(OBSERVATIONAL_SECTIONS)
        for section in OBSERVATIONAL_SECTIONS:
            assert section not in semantic

    def test_hash_is_stable_across_interpreter_processes(self):
        """The cache key must not depend on interpreter state (hash
        randomization, dict order): a daemon hashes submissions from
        other processes, possibly days apart."""
        import os
        import subprocess
        import sys
        script = (
            "from repro.common.config import SimulationConfig\n"
            "c = SimulationConfig(num_tiles=8, seed=3)\n"
            "c.sync.model = 'lax_p2p'\n"
            "print(c.content_hash())\n")
        hashes = set()
        for hashseed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            out = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            hashes.add(out.stdout.strip())
        local = SimulationConfig(num_tiles=8, seed=3)
        local.sync.model = "lax_p2p"
        hashes.add(local.content_hash())
        assert len(hashes) == 1
