"""Typed identifiers."""

from repro.common.ids import CoreId, ProcessId, ThreadId, TileId


class TestIds:
    def test_ids_are_ints(self):
        assert TileId(3) == 3
        assert int(CoreId(5)) == 5

    def test_ids_usable_as_indices(self):
        values = ["a", "b", "c"]
        assert values[TileId(1)] == "b"

    def test_ids_hashable_like_ints(self):
        mapping = {TileId(2): "x"}
        assert mapping[2] == "x"

    def test_distinct_reprs(self):
        assert "TileId" in repr(TileId(1))
        assert "ThreadId" in repr(ThreadId(1))
        assert "ProcessId" in repr(ProcessId(1))
