"""Logging helpers."""

import logging

from repro.common import log


class TestLogging:
    def test_loggers_namespaced(self):
        logger = log.get_logger("memory.coherence")
        assert logger.name == "repro.memory.coherence"

    def test_enable_then_disable(self):
        log.enable_tracing()
        assert logging.getLogger("repro").level == logging.DEBUG
        log.disable_tracing()
        assert logging.getLogger("repro").level == logging.WARNING

    def test_enable_idempotent_handlers(self):
        log.enable_tracing()
        log.enable_tracing()
        assert len(logging.getLogger("repro").handlers) == 1
        log.disable_tracing()
