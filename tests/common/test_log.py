"""Logging helpers."""

import logging

from repro.common import log


class TestLogging:
    def test_loggers_namespaced(self):
        logger = log.get_logger("memory.coherence")
        assert logger.name == "repro.memory.coherence"

    def test_enable_then_disable(self):
        log.enable_tracing()
        assert logging.getLogger("repro").level == logging.DEBUG
        log.disable_tracing()
        assert logging.getLogger("repro").level == logging.WARNING

    def test_enable_idempotent_handlers(self):
        log.enable_tracing()
        log.enable_tracing()
        assert len(logging.getLogger("repro").handlers) == 1
        log.disable_tracing()

    def test_enable_with_foreign_handler_still_adds_trace_handler(self):
        """A pre-existing handler (pytest caplog, an application's own
        setup) must not suppress the trace handler — and repeats must
        still not stack a second one."""
        logger = logging.getLogger("repro")
        saved = list(logger.handlers)
        logger.handlers.clear()
        foreign = logging.NullHandler()
        logger.addHandler(foreign)
        try:
            log.enable_tracing()
            log.enable_tracing()
            trace = [h for h in logger.handlers
                     if getattr(h, "_repro_trace_handler", False)]
            assert len(trace) == 1
            assert foreign in logger.handlers
        finally:
            logger.handlers.clear()
            for handler in saved:
                logger.addHandler(handler)
            log.disable_tracing()
