"""Deterministic RNG streams."""

from repro.common.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_sequence(self):
        a = RngStreams(1).stream("x")
        b = RngStreams(1).stream("x")
        assert [a.random() for _ in range(10)] == \
            [b.random() for _ in range(10)]

    def test_different_names_independent(self):
        streams = RngStreams(1)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_stream_is_memoized(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_consumers_do_not_perturb_each_other(self):
        """Drawing from one stream must not shift another's sequence."""
        solo = RngStreams(3)
        expected = [solo.stream("b").random() for _ in range(5)]
        mixed = RngStreams(3)
        mixed.stream("a").random()  # interleaved draw on another stream
        got = [mixed.stream("b").random() for _ in range(5)]
        assert got == expected

    def test_reseed_changes_sequences(self):
        streams = RngStreams(1)
        first = streams.stream("x").random()
        streams.reseed(2)
        assert streams.stream("x").random() != first

    def test_fork_is_deterministic(self):
        a = RngStreams(1).fork("run0").stream("x").random()
        b = RngStreams(1).fork("run0").stream("x").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = RngStreams(1)
        child = parent.fork("run0")
        assert parent.stream("x").random() != child.stream("x").random()
