"""Statistics primitives."""

import pytest

from repro.common.stats import Counter, Histogram, StatGroup, TimeSeries


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_add_default_one(self):
        c = Counter("c")
        c.add()
        c.add()
        assert c.value == 2

    def test_add_amount(self):
        c = Counter("c")
        c.add(41)
        c.add(1)
        assert c.value == 42

    def test_reset(self):
        c = Counter("c", 5)
        c.reset()
        assert c.value == 0


class TestHistogram:
    def test_empty_moments(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.stddev == 0.0
        assert h.cov == 0.0

    def test_mean(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        assert h.mean == pytest.approx(2.0)

    def test_min_max(self):
        h = Histogram("h")
        for v in (5.0, -1.0, 3.0):
            h.record(v)
        assert h.min == -1.0
        assert h.max == 5.0

    def test_stddev(self):
        h = Histogram("h")
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            h.record(v)
        assert h.stddev == pytest.approx(2.0)

    def test_cov_is_relative(self):
        a = Histogram("a")
        b = Histogram("b")
        for v in (9.0, 10.0, 11.0):
            a.record(v)
            b.record(v * 100)
        assert a.cov == pytest.approx(b.cov)

    def test_constant_samples_zero_cov(self):
        h = Histogram("h")
        for _ in range(10):
            h.record(3.5)
        assert h.cov == pytest.approx(0.0, abs=1e-12)


class TestTimeSeries:
    def test_record_and_len(self):
        s = TimeSeries("s")
        s.record(0.0, 1.0)
        s.record(1.0, 2.0)
        assert len(s) == 2

    def test_window_extrema_shape(self):
        s = TimeSeries("s")
        for i in range(100):
            s.record(float(i), float(i % 10))
        buckets = s.window_extrema(10)
        assert len(buckets) == 10
        for _, lo, hi in buckets:
            assert lo <= hi

    def test_window_extrema_captures_range(self):
        s = TimeSeries("s")
        s.record(0.0, -5.0)
        s.record(0.5, 7.0)
        s.record(1.0, 1.0)
        [(_, lo, hi)] = s.window_extrema(1)
        assert lo == -5.0
        assert hi == 7.0

    def test_empty_series(self):
        assert TimeSeries("s").window_extrema(4) == []


class TestStatGroup:
    def test_counter_is_memoized(self):
        g = StatGroup("g")
        assert g.counter("x") is g.counter("x")

    def test_child_is_memoized(self):
        g = StatGroup("g")
        assert g.child("sub") is g.child("sub")

    def test_walk_produces_dotted_paths(self):
        g = StatGroup("root")
        g.counter("a").add(1)
        g.child("sub").counter("b").add(2)
        paths = dict(g.walk())
        assert paths["root.a"].value == 1
        assert paths["root.sub.b"].value == 2

    def test_to_dict_flattens(self):
        g = StatGroup("root")
        g.child("x").child("y").counter("deep").add(9)
        assert g.to_dict()["root.x.y.deep"] == 9

    def test_histogram_and_series_coexist(self):
        g = StatGroup("g")
        g.histogram("h").record(1.0)
        g.timeseries("t").record(0.0, 1.0)
        assert g.histogram("h").count == 1
        assert len(g.timeseries("t")) == 1


class TestHistogramQuantiles:
    def test_empty_quantile_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_out_of_range_rejected(self):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_small_sample_exact(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            h.record(v)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.5) == 3.0
        assert h.quantile(1.0) == 5.0
        assert h.quantile(0.25) == pytest.approx(2.0)

    def test_decimation_bounds_memory_keeps_estimate(self):
        h = Histogram("h")
        for v in range(10_000):
            h.record(float(v))
        assert len(h.samples) <= Histogram.MAX_SAMPLES
        assert h.count == 10_000  # moments never decimate
        # Uniform 0..9999: the median estimate stays close.
        assert h.quantile(0.5) == pytest.approx(5000.0, rel=0.05)
        assert h.quantile(0.95) == pytest.approx(9500.0, rel=0.05)


class TestHistogramMerge:
    def test_merge_moments_and_extrema(self):
        a, b = Histogram("a"), Histogram("b")
        for v in (1.0, 2.0, 3.0):
            a.record(v)
        for v in (10.0, 20.0):
            b.record(v)
        a.merge(b)
        assert a.count == 5
        assert a.mean == pytest.approx((1 + 2 + 3 + 10 + 20) / 5)
        assert a.min == 1.0 and a.max == 20.0

    def test_merge_empty_is_identity(self):
        a = Histogram("a")
        a.record(4.0)
        before = (a.count, a.mean, a.min, a.max, list(a.samples))
        a.merge(Histogram("b"))
        assert (a.count, a.mean, a.min, a.max, list(a.samples)) == before

    def test_merge_respects_sample_cap(self):
        a, b = Histogram("a"), Histogram("b")
        for v in range(2_000):
            a.record(float(v))
            b.record(float(v) + 0.5)
        a.merge(b)
        assert len(a.samples) <= Histogram.MAX_SAMPLES
        assert a.count == 4_000

    def test_state_roundtrip(self):
        h = Histogram("h")
        for v in (3.0, 1.0, 7.0):
            h.record(v)
        clone = Histogram("clone")
        clone.merge_state(h.state())
        assert clone.count == h.count
        assert clone.mean == h.mean
        assert clone.stddev == h.stddev
        assert clone.min == h.min and clone.max == h.max
        assert clone.quantile(0.5) == h.quantile(0.5)


class TestHistogramStatesTree:
    def test_flatten_and_merge_into_fresh_tree(self):
        src = StatGroup("sim")
        src.child("thread3").histogram("sleep").record(0.5)
        src.child("thread3").histogram("sleep").record(1.5)
        flat = src.histogram_states()
        assert set(flat) == {"sim.thread3.sleep"}

        dst = StatGroup("sim")
        dst.merge_histogram_states(flat)
        merged = dst.child("thread3").histogram("sleep")
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.0)

    def test_merge_accumulates_over_existing(self):
        dst = StatGroup("sim")
        dst.child("t").histogram("h").record(1.0)
        src = StatGroup("sim")
        src.child("t").histogram("h").record(3.0)
        dst.merge_histogram_states(src.histogram_states())
        assert dst.child("t").histogram("h").count == 2
        assert dst.child("t").histogram("h").mean == pytest.approx(2.0)

    def test_foreign_root_rejected(self):
        dst = StatGroup("sim")
        with pytest.raises(ValueError, match="rooted"):
            dst.merge_histogram_states({"other.h": {}})
