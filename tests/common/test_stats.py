"""Statistics primitives."""

import pytest

from repro.common.stats import Counter, Histogram, StatGroup, TimeSeries


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_add_default_one(self):
        c = Counter("c")
        c.add()
        c.add()
        assert c.value == 2

    def test_add_amount(self):
        c = Counter("c")
        c.add(41)
        c.add(1)
        assert c.value == 42

    def test_reset(self):
        c = Counter("c", 5)
        c.reset()
        assert c.value == 0


class TestHistogram:
    def test_empty_moments(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.stddev == 0.0
        assert h.cov == 0.0

    def test_mean(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        assert h.mean == pytest.approx(2.0)

    def test_min_max(self):
        h = Histogram("h")
        for v in (5.0, -1.0, 3.0):
            h.record(v)
        assert h.min == -1.0
        assert h.max == 5.0

    def test_stddev(self):
        h = Histogram("h")
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            h.record(v)
        assert h.stddev == pytest.approx(2.0)

    def test_cov_is_relative(self):
        a = Histogram("a")
        b = Histogram("b")
        for v in (9.0, 10.0, 11.0):
            a.record(v)
            b.record(v * 100)
        assert a.cov == pytest.approx(b.cov)

    def test_constant_samples_zero_cov(self):
        h = Histogram("h")
        for _ in range(10):
            h.record(3.5)
        assert h.cov == pytest.approx(0.0, abs=1e-12)


class TestTimeSeries:
    def test_record_and_len(self):
        s = TimeSeries("s")
        s.record(0.0, 1.0)
        s.record(1.0, 2.0)
        assert len(s) == 2

    def test_window_extrema_shape(self):
        s = TimeSeries("s")
        for i in range(100):
            s.record(float(i), float(i % 10))
        buckets = s.window_extrema(10)
        assert len(buckets) == 10
        for _, lo, hi in buckets:
            assert lo <= hi

    def test_window_extrema_captures_range(self):
        s = TimeSeries("s")
        s.record(0.0, -5.0)
        s.record(0.5, 7.0)
        s.record(1.0, 1.0)
        [(_, lo, hi)] = s.window_extrema(1)
        assert lo == -5.0
        assert hi == 7.0

    def test_empty_series(self):
        assert TimeSeries("s").window_extrema(4) == []


class TestStatGroup:
    def test_counter_is_memoized(self):
        g = StatGroup("g")
        assert g.counter("x") is g.counter("x")

    def test_child_is_memoized(self):
        g = StatGroup("g")
        assert g.child("sub") is g.child("sub")

    def test_walk_produces_dotted_paths(self):
        g = StatGroup("root")
        g.counter("a").add(1)
        g.child("sub").counter("b").add(2)
        paths = dict(g.walk())
        assert paths["root.a"].value == 1
        assert paths["root.sub.b"].value == 2

    def test_to_dict_flattens(self):
        g = StatGroup("root")
        g.child("x").child("y").counter("deep").add(9)
        assert g.to_dict()["root.x.y.deep"] == 9

    def test_histogram_and_series_coexist(self):
        g = StatGroup("g")
        g.histogram("h").record(1.0)
        g.timeseries("t").record(0.0, 1.0)
        assert g.histogram("h").count == 1
        assert len(g.timeseries("t")) == 1
