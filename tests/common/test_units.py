"""Unit conversions."""

import pytest

from repro.common import units


class TestConversions:
    def test_cycles_to_seconds_at_1ghz(self):
        assert units.cycles_to_seconds(1_000_000_000) == pytest.approx(1.0)

    def test_seconds_to_cycles_truncates(self):
        assert units.seconds_to_cycles(1.5e-9) == 1

    def test_round_trip(self):
        cycles = 123_456
        assert units.seconds_to_cycles(
            units.cycles_to_seconds(cycles)) == cycles

    def test_bytes_per_cycle(self):
        # 5.13 GB/s at 1 GHz = 5.13 bytes per cycle (binary GB).
        bpc = units.bytes_per_cycle(5.13 * units.GB)
        assert bpc == pytest.approx(5.13 * 1.0737, rel=0.01)


class TestPretty:
    def test_pretty_bytes_kb(self):
        assert units.pretty_bytes(32 * units.KB) == "32 KB"

    def test_pretty_bytes_mb(self):
        assert units.pretty_bytes(3 * units.MB) == "3 MB"

    def test_pretty_bytes_odd(self):
        assert units.pretty_bytes(100) == "100 B"

    def test_pretty_seconds_scales(self):
        assert units.pretty_seconds(2.0) == "2.00 s"
        assert units.pretty_seconds(2e-3) == "2.00 ms"
        assert units.pretty_seconds(2e-6) == "2.00 us"
        assert units.pretty_seconds(2e-9) == "2 ns"
