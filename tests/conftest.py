"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.common.config import SimulationConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.host.cluster import ClusterLayout
from repro.memory.address import AddressSpace
from repro.memory.backing import BackingStore
from repro.memory.coherence import CoherenceEngine
from repro.memory.controller import MemoryController
from repro.memory.miss_classifier import MissClassifier
from repro.network.interface import NetworkFabric
from repro.transport.transport import Transport


@pytest.fixture
def config() -> SimulationConfig:
    """A small validated default configuration (8 tiles, 1 machine)."""
    cfg = SimulationConfig(num_tiles=8)
    cfg.validate()
    return cfg


class MemoryRig:
    """A fully wired memory system without scheduler or interpreters.

    Lets memory tests drive loads/stores from arbitrary tiles directly.
    """

    def __init__(self, config: SimulationConfig,
                 classify: bool = False) -> None:
        self.config = config
        self.stats = StatGroup("rig")
        self.layout = ClusterLayout(config.num_tiles, config.host)
        self.transport = Transport(self.layout,
                                   self.stats.child("transport"))
        self.fabric = NetworkFabric(config.num_tiles, config.network,
                                    self.transport,
                                    self.stats.child("network"))
        line = config.memory.l2.line_bytes
        self.space = AddressSpace(config.num_tiles, line)
        self.backing = BackingStore(line)
        self.classifier = (MissClassifier(config.num_tiles, line,
                                          self.stats.child("cls"))
                           if classify else None)
        self.engine = CoherenceEngine(
            config.num_tiles, config.memory, self.space, self.backing,
            self.fabric, config.core.clock_hz, self.stats.child("mem"),
            self.classifier)
        self.controllers = [
            MemoryController(TileId(t), self.engine, lambda: None,
                             self.stats.child(f"mc{t}"))
            for t in range(config.num_tiles)]

    def load(self, tile: int, address: int, size: int = 8,
             clock: int = 0):
        return self.controllers[tile].load(address, size, clock)

    def store(self, tile: int, address: int, data: bytes,
              clock: int = 0) -> int:
        return self.controllers[tile].store(address, data, clock)

    def store_int(self, tile: int, address: int, value: int,
                  clock: int = 0) -> int:
        return self.store(tile, address, value.to_bytes(8, "little"),
                          clock)

    def load_int(self, tile: int, address: int, clock: int = 0):
        data, latency = self.load(tile, address, 8, clock)
        return int.from_bytes(data, "little"), latency


@pytest.fixture
def memory_rig(config) -> MemoryRig:
    return MemoryRig(config)


@pytest.fixture
def classifying_rig(config) -> MemoryRig:
    return MemoryRig(config, classify=True)


def tiny_config(num_tiles: int = 4, **host_kwargs) -> SimulationConfig:
    """A fast configuration for full-simulation tests."""
    cfg = SimulationConfig(num_tiles=num_tiles)
    for key, value in host_kwargs.items():
        setattr(cfg.host, key, value)
    cfg.host.quantum_instructions = 200
    cfg.validate()
    return cfg
