"""Branch predictor: two-bit saturating counters."""

import pytest

from repro.common.stats import StatGroup
from repro.core.branch import BranchPredictor


@pytest.fixture
def predictor():
    return BranchPredictor(64, StatGroup("bp"))


class TestPredictor:
    def test_learns_always_taken(self, predictor):
        # Weak-not-taken start: two mispredictions, then correct.
        outcomes = [predictor.predict_and_update(0x100, True)
                    for _ in range(10)]
        assert outcomes[0] is True
        assert not any(outcomes[2:])

    def test_learns_never_taken(self, predictor):
        outcomes = [predictor.predict_and_update(0x100, False)
                    for _ in range(10)]
        assert not any(outcomes)  # initial state predicts not-taken

    def test_hysteresis_survives_single_flip(self, predictor):
        for _ in range(4):
            predictor.predict_and_update(0x100, True)
        predictor.predict_and_update(0x100, False)  # one anomaly
        # Still predicts taken (strong -> weak, not flipped).
        assert predictor.predict_and_update(0x100, True) is False

    def test_alternating_pattern_mispredicts(self, predictor):
        wrong = sum(predictor.predict_and_update(0x40, i % 2 == 0)
                    for i in range(40))
        assert wrong >= 15  # bimodal cannot learn alternation

    def test_distinct_pcs_independent(self, predictor):
        for _ in range(4):
            predictor.predict_and_update(0x100, True)
        # A different (non-aliasing) branch starts from the initial state.
        assert predictor.predict_and_update(0x104, False) is False

    def test_misprediction_rate(self, predictor):
        for _ in range(10):
            predictor.predict_and_update(0x100, True)
        assert 0.0 < predictor.misprediction_rate < 0.5

    def test_power_of_two_entries_required(self):
        with pytest.raises(ValueError):
            BranchPredictor(100, StatGroup("bp"))
