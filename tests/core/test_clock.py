"""Tile-local clocks: monotonic, forward-only."""

import pytest

from repro.core.clock import TileClock


class TestTileClock:
    def test_starts_at_zero(self):
        assert TileClock().now == 0

    def test_advance(self):
        clock = TileClock()
        clock.advance(10)
        clock.advance(5)
        assert clock.now == 15

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            TileClock().advance(-1)

    def test_forward_to_future_moves(self):
        clock = TileClock(100)
        assert clock.forward_to(200) is True
        assert clock.now == 200

    def test_forward_to_past_is_noop(self):
        """Lax rule: events in the local past leave the clock alone."""
        clock = TileClock(100)
        assert clock.forward_to(50) is False
        assert clock.now == 100

    def test_forward_to_present_is_noop(self):
        clock = TileClock(100)
        assert clock.forward_to(100) is False

    def test_start_value(self):
        assert TileClock(42).now == 42
