"""Store buffer and load queue."""

import pytest

from repro.common.stats import StatGroup
from repro.core.lsu import LoadQueue, StoreBuffer


class TestStoreBuffer:
    def test_stores_buffer_without_stall(self):
        sb = StoreBuffer(4, StatGroup("sb"))
        for i in range(4):
            assert sb.issue(now=0, address=i * 64, latency=100) == 0

    def test_full_buffer_stalls_until_oldest_drains(self):
        sb = StoreBuffer(2, StatGroup("sb"))
        sb.issue(0, 0x0, 100)   # completes at 100
        sb.issue(0, 0x40, 100)  # completes at 100
        stall = sb.issue(10, 0x80, 100)
        assert stall == 90  # waited for the store finishing at t=100

    def test_drained_entries_free_slots(self):
        sb = StoreBuffer(1, StatGroup("sb"))
        sb.issue(0, 0x0, 50)
        assert sb.issue(60, 0x40, 50) == 0  # first store already done

    def test_forwarding_detects_buffered_address(self):
        sb = StoreBuffer(4, StatGroup("sb"))
        sb.issue(0, 0x1000, 100)
        assert sb.forwards(0x1000)
        assert not sb.forwards(0x2000)

    def test_occupancy_tracks_time(self):
        sb = StoreBuffer(4, StatGroup("sb"))
        sb.issue(0, 0x0, 100)
        sb.issue(0, 0x40, 200)
        assert sb.occupancy(150) == 1
        assert sb.occupancy(250) == 0

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            StoreBuffer(0, StatGroup("sb"))


class TestLoadQueue:
    def test_loads_under_limit_no_stall(self):
        lq = LoadQueue(4, StatGroup("lq"))
        for _ in range(4):
            assert lq.issue(0, 100) == 0

    def test_full_queue_stalls(self):
        lq = LoadQueue(2, StatGroup("lq"))
        lq.issue(0, 100)
        lq.issue(0, 100)
        assert lq.issue(0, 100) == 100

    def test_completed_loads_retire(self):
        lq = LoadQueue(1, StatGroup("lq"))
        lq.issue(0, 10)
        assert lq.issue(20, 10) == 0

    def test_stall_statistics_recorded(self):
        stats = StatGroup("lq")
        lq = LoadQueue(1, stats)
        lq.issue(0, 100)
        lq.issue(0, 100)
        assert stats.counter("load_queue_stall_cycles").value == 100
