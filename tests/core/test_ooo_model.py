"""The out-of-order core timing model."""

import pytest

from repro.common.config import CoreConfig
from repro.common.errors import ConfigError
from repro.common.stats import StatGroup
from repro.core.factory import create_core_model
from repro.core.instruction import (
    BranchInstruction,
    Instruction,
    MemoryInstruction,
    PseudoInstruction,
    PseudoKind,
)
from repro.core.isa import InstructionClass
from repro.core.ooo_model import OutOfOrderCoreModel
from repro.core.perf_model import CorePerfModel


def ooo(rob=8, width=2, **kwargs):
    config = CoreConfig(model="out_of_order", rob_entries=rob,
                        dispatch_width=width, **kwargs)
    return OutOfOrderCoreModel(config, StatGroup("ooo"))


def load(latency, address=0x1000):
    return MemoryInstruction(InstructionClass.LOAD, address, 8, latency)


class TestFactory:
    def test_selects_models(self):
        in_order = create_core_model(CoreConfig(), StatGroup("a"))
        assert isinstance(in_order, CorePerfModel)
        out = create_core_model(CoreConfig(model="out_of_order"),
                                StatGroup("b"))
        assert isinstance(out, OutOfOrderCoreModel)

    def test_unknown_model_rejected_by_validate(self):
        with pytest.raises(ConfigError):
            CoreConfig(model="vliw").validate()


class TestMemoryLevelParallelism:
    def test_loads_overlap(self):
        """N loads within the window cost far less than N x latency."""
        core = ooo(rob=16)
        for i in range(8):
            core.execute_memory(load(500, address=i * 64))
        core.drain()
        # Serial execution would take >= 8 * 500; overlapped, ~500.
        assert core.cycles < 2 * 500

    def test_in_order_model_serializes_same_stream(self):
        in_order = CorePerfModel(CoreConfig(), StatGroup("io"))
        for i in range(8):
            in_order.execute_memory(load(500, address=i * 64))
        assert in_order.cycles >= 8 * 500

    def test_window_pressure_stalls(self):
        """More in-flight ops than the window -> partial serialization."""
        small = ooo(rob=2)
        for i in range(8):
            small.execute_memory(load(500, address=i * 64))
        small.drain()
        big = ooo(rob=16)
        for i in range(8):
            big.execute_memory(load(500, address=i * 64))
        big.drain()
        assert small.cycles > big.cycles

    def test_drain_waits_for_slowest(self):
        core = ooo()
        core.execute_memory(load(100))
        core.execute_memory(load(900, address=0x2000))
        core.drain()
        assert core.cycles >= 900


class TestDispatch:
    def test_width_halves_issue_time(self):
        narrow = ooo(width=1)
        wide = ooo(width=4)
        for model in (narrow, wide):
            model.execute(Instruction(InstructionClass.IALU, 1000))
        assert wide.cycles < narrow.cycles
        assert narrow.cycles >= 1000

    def test_instruction_counting(self):
        core = ooo()
        core.execute(Instruction(InstructionClass.GENERIC, 123))
        core.execute_memory(load(10))
        assert core.instruction_count == 124


class TestBranches:
    def test_mispredict_flushes_overlap(self):
        core = ooo(rob=16)
        core.execute_memory(load(1000))
        # A mispredicted branch drains the in-flight load.
        core.execute_branch(BranchInstruction(0x100, True))
        assert core.cycles >= 1000

    def test_predicted_branch_keeps_overlap(self):
        core = ooo(rob=16)
        for _ in range(4):  # train the predictor
            core.execute_branch(BranchInstruction(0x100, True))
        start = core.cycles
        core.execute_memory(load(1000))
        core.execute_branch(BranchInstruction(0x100, True))
        # No flush: the load is still in flight.
        assert core.cycles - start < 1000


class TestSynchronization:
    def test_sync_drains_then_forwards(self):
        core = ooo()
        core.execute_memory(load(700))
        core.execute_pseudo(PseudoInstruction(PseudoKind.SYNC, time=100))
        assert core.cycles >= 700  # drained past the load

    def test_sync_forward_to_future(self):
        core = ooo()
        core.execute_pseudo(PseudoInstruction(PseudoKind.SYNC,
                                              time=5000))
        assert core.cycles == 5000


class TestEndToEnd:
    def test_ooo_faster_on_memory_parallel_program(self):
        """A full simulation: OoO hides miss latency the in-order pays."""
        from repro.sim.simulator import Simulator
        from tests.conftest import tiny_config

        def streaming(ctx):
            base = yield from ctx.malloc(64 * 256, align=64)
            for i in range(256):  # independent line-striding loads
                yield from ctx.load_u64(base + i * 64)
            return True

        cycles = {}
        for model in ("in_order", "out_of_order"):
            config = tiny_config(2)
            config.core.model = model
            result = Simulator(config).run(streaming)
            assert result.main_result is True
            cycles[model] = result.simulated_cycles
        assert cycles["out_of_order"] < 0.7 * cycles["in_order"]

    def test_functional_results_identical(self):
        from repro.sim.simulator import Simulator
        from tests.conftest import tiny_config

        def program(ctx):
            base = yield from ctx.calloc(128)
            total = 0
            for i in range(16):
                yield from ctx.store_u64(base + (i % 8) * 8, i * 3)
                total += yield from ctx.load_u64(base + (i % 8) * 8)
            return total

        results = set()
        for model in ("in_order", "out_of_order"):
            config = tiny_config(2)
            config.core.model = model
            results.add(Simulator(config).run(program).main_result)
        assert len(results) == 1
