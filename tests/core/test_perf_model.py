"""The in-order core performance model."""

import pytest

from repro.common.config import CoreConfig
from repro.common.stats import StatGroup
from repro.core.instruction import (
    BranchInstruction,
    Instruction,
    MemoryInstruction,
    PseudoInstruction,
    PseudoKind,
)
from repro.core.isa import InstructionClass
from repro.core.perf_model import STORE_FORWARD_LATENCY, CorePerfModel


@pytest.fixture
def core():
    return CorePerfModel(CoreConfig(), StatGroup("core"))


class TestInstructionCosts:
    def test_generic_costs_one_cycle(self, core):
        core.execute(Instruction(InstructionClass.GENERIC, 10))
        assert core.cycles == 10

    def test_configured_class_costs(self, core):
        core.execute(Instruction(InstructionClass.FPU_DIV, 1))
        assert core.cycles == CoreConfig().instruction_costs["fpu_div"]

    def test_unknown_class_defaults_to_one(self):
        config = CoreConfig(instruction_costs={})
        model = CorePerfModel(config, StatGroup("core"))
        model.execute(Instruction(InstructionClass.IMUL, 3))
        assert model.cycles == 3

    def test_instruction_count_tracks_batches(self, core):
        core.execute(Instruction(InstructionClass.IALU, 100))
        assert core.instruction_count == 100


class TestBranches:
    def test_mispredict_pays_penalty(self, core):
        # First taken branch from weak-not-taken state mispredicts.
        mispredicted = core.execute_branch(BranchInstruction(0x100, True))
        assert mispredicted
        assert core.cycles == 1 + CoreConfig().branch_mispredict_penalty

    def test_correct_prediction_is_cheap(self, core):
        for _ in range(4):
            core.execute_branch(BranchInstruction(0x100, True))
        before = core.cycles
        core.execute_branch(BranchInstruction(0x100, True))
        assert core.cycles - before == 1


class TestMemory:
    def test_load_charges_full_latency(self, core):
        core.execute_memory(MemoryInstruction(
            InstructionClass.LOAD, 0x1000, 8, 50))
        assert core.cycles == 1 + 50

    def test_store_is_buffered(self, core):
        core.execute_memory(MemoryInstruction(
            InstructionClass.STORE, 0x1000, 8, 500))
        assert core.cycles == 1  # hidden by the store buffer

    def test_store_buffer_backpressure(self, core):
        for i in range(CoreConfig().store_buffer_entries):
            core.execute_memory(MemoryInstruction(
                InstructionClass.STORE, i * 64, 8, 10_000))
        before = core.cycles
        core.execute_memory(MemoryInstruction(
            InstructionClass.STORE, 0x9000, 8, 10_000))
        assert core.cycles - before > 1  # stalled for a drain

    def test_store_to_load_forwarding(self, core):
        core.execute_memory(MemoryInstruction(
            InstructionClass.STORE, 0x1000, 8, 10_000))
        before = core.cycles
        core.execute_memory(MemoryInstruction(
            InstructionClass.LOAD, 0x1000, 8, 10_000))
        assert core.cycles - before == 1 + STORE_FORWARD_LATENCY

    def test_non_memory_class_rejected(self, core):
        with pytest.raises(ValueError):
            core.execute_memory(MemoryInstruction(
                InstructionClass.IALU, 0, 8, 1))


class TestPseudoInstructions:
    def test_sync_forwards_clock(self, core):
        core.execute_pseudo(PseudoInstruction(PseudoKind.SYNC, time=500))
        assert core.cycles == 500

    def test_sync_in_past_is_noop(self, core):
        core.execute(Instruction(InstructionClass.GENERIC, 100))
        core.execute_pseudo(PseudoInstruction(PseudoKind.SYNC, time=50))
        assert core.cycles == 100

    def test_message_receive_forwards_and_charges(self, core):
        core.execute_pseudo(PseudoInstruction(
            PseudoKind.MESSAGE_RECEIVE, time=200, cost=20))
        assert core.cycles == 220

    def test_cost_only_pseudo(self, core):
        core.execute_pseudo(PseudoInstruction(PseudoKind.COST, cost=33))
        assert core.cycles == 33

    def test_sync_wait_cycles_recorded(self):
        stats = StatGroup("core")
        model = CorePerfModel(CoreConfig(), stats)
        model.execute_pseudo(PseudoInstruction(PseudoKind.SYNC, time=100))
        assert stats.counter("sync_wait_cycles").value == 100
