"""The mp backend must reproduce the in-process backend exactly.

This is the acceptance bar of the distributed backend: same seed, same
configuration => byte-identical headline metrics (simulated cycles,
message counts, every counter) whichever backend ran the simulation.
"""

from __future__ import annotations

import pytest

from repro.common.config import SimulationConfig
from repro.distrib.coordinator import DistribSimulator
from repro.distrib.wire import WorkloadRef
from repro.sim.runner import create_simulator, run_simulation
from repro.sim.simulator import Simulator


def _config(sync: str, network: str) -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=4, seed=11)
    cfg.host.num_machines = 2
    cfg.host.cores_per_machine = 2
    cfg.host.quantum_instructions = 200
    cfg.sync.model = sync
    cfg.network.memory_model = network
    cfg.validate()
    return cfg


REF = WorkloadRef("matrix_multiply", nthreads=4, scale=0.05)


@pytest.mark.parametrize("network", ["magic", "mesh"])
@pytest.mark.parametrize("sync", ["lax", "lax_barrier"])
def test_backends_produce_identical_metrics(sync, network):
    cfg = _config(sync, network)
    inproc = Simulator(cfg).run(REF)

    mp_cfg = _config(sync, network)
    mp_cfg.distrib.backend = "mp"
    sim = create_simulator(mp_cfg)
    assert isinstance(sim, DistribSimulator)
    assert sim.layout.num_processes == 2  # a real multi-worker split
    mp = sim.run(REF)

    assert mp.simulated_cycles == inproc.simulated_cycles
    assert mp.thread_cycles == inproc.thread_cycles
    assert mp.thread_start_cycles == inproc.thread_start_cycles
    assert mp.thread_instructions == inproc.thread_instructions
    assert mp.counters == inproc.counters  # every counter, every subsystem
    assert mp.wall_clock_seconds == inproc.wall_clock_seconds
    assert mp.core_busy_seconds == inproc.core_busy_seconds
    assert mp.main_result == inproc.main_result


def test_mp_backend_survives_coherence_audit():
    """The coordinator-side memory system stays consistent under mp."""
    cfg = _config("lax", "mesh")
    cfg.distrib.backend = "mp"
    sim = create_simulator(cfg)
    sim.run(REF)
    sim.engine.check_coherence_invariants()


def test_run_simulation_selects_backend():
    cfg = _config("lax", "magic")
    assert isinstance(create_simulator(cfg), Simulator)
    assert not isinstance(create_simulator(cfg), DistribSimulator)
    result = run_simulation(cfg, REF)
    cfg.distrib.backend = "mp"
    assert run_simulation(cfg, REF).simulated_cycles \
        == result.simulated_cycles
