"""Worker lifecycle robustness: crashes, timeouts, clean teardown."""

from __future__ import annotations

import os
import signal
import sys

import pytest

from repro.common.config import SimulationConfig
from repro.distrib.coordinator import WorkerCluster
from repro.distrib.errors import WorkerCrashError, WorkerTimeoutError
from repro.distrib.wire import FrameKind
from repro.host.cluster import ClusterLayout
from repro.sim.runner import run_simulation


def _cluster_config(num_tiles: int = 4,
                    timeout: float = 2.0) -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=num_tiles, seed=5)
    cfg.host.num_machines = 2
    cfg.host.cores_per_machine = 2
    cfg.distrib.worker_timeout = timeout
    cfg.distrib.shutdown_timeout = 2.0
    cfg.validate()
    return cfg


def _failing_program(ctx):
    yield from ctx.compute(10)
    raise ZeroDivisionError("simulated application fault")


def test_cluster_starts_and_shuts_down_cleanly():
    cfg = _cluster_config()
    layout = ClusterLayout(cfg.num_tiles, cfg.host)
    cluster = WorkerCluster(layout, cfg)
    assert cluster.num_workers == 2
    stats = cluster.collect_stats()
    assert stats == [{}, {}]  # alive, responsive, nothing recorded yet
    cluster.shutdown()
    for proc in cluster._procs:
        assert not proc.is_alive()


def test_killed_worker_surfaces_as_crash_not_hang():
    cfg = _cluster_config(timeout=30.0)
    layout = ClusterLayout(cfg.num_tiles, cfg.host)
    with WorkerCluster(layout, cfg) as cluster:
        os.kill(cluster._procs[1].pid, signal.SIGKILL)
        cluster._procs[1].join(timeout=5.0)
        with pytest.raises(WorkerCrashError, match="worker 1"):
            cluster.send(1, FrameKind.COLLECT_STATS, None)
            cluster.recv(1)


def test_silent_worker_surfaces_as_timeout():
    cfg = _cluster_config(timeout=0.5)
    layout = ClusterLayout(cfg.num_tiles, cfg.host)
    with WorkerCluster(layout, cfg) as cluster:
        # Workers only speak when spoken to; an unsolicited recv waits
        # on a healthy-but-silent worker until the timeout trips.
        with pytest.raises(WorkerTimeoutError, match="worker 0"):
            cluster.recv(0)


def test_timeout_is_distrib_error_not_builtin():
    """The deadline error names the worker and belongs to the distrib
    hierarchy — callers must never see a bare builtin TimeoutError."""
    cfg = _cluster_config(timeout=0.5)
    layout = ClusterLayout(cfg.num_tiles, cfg.host)
    with WorkerCluster(layout, cfg) as cluster:
        with pytest.raises(WorkerTimeoutError) as excinfo:
            cluster.recv(1)
    assert "worker 1" in str(excinfo.value)
    assert not isinstance(excinfo.value, TimeoutError)
    from repro.distrib.errors import DistribError
    assert isinstance(excinfo.value, DistribError)


def test_silent_worker_times_out_under_profiling():
    """The profiled recv path (which times idle waits and decodes)
    must preserve the deadline behaviour, worker id included."""
    from repro.profile import HostProfiler

    cfg = _cluster_config(timeout=0.5)
    cfg.profile.enabled = True
    layout = ClusterLayout(cfg.num_tiles, cfg.host)
    profiler = HostProfiler()
    with WorkerCluster(layout, cfg, profiler=profiler) as cluster:
        with pytest.raises(WorkerTimeoutError, match="worker 0"):
            cluster.recv(0)


def test_target_fault_reraised_with_remote_traceback():
    """A crash inside the simulated program keeps its type and carries
    the worker's traceback; the cluster still tears down afterwards."""
    cfg = _cluster_config()
    cfg.distrib.backend = "mp"
    with pytest.raises(ZeroDivisionError, match="application fault") \
            as excinfo:
        run_simulation(cfg, _failing_program)
    if sys.version_info >= (3, 11):  # exception notes
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("worker traceback" in note for note in notes)
        assert any("_failing_program" in note for note in notes)


def test_failed_run_does_not_leak_workers():
    cfg = _cluster_config()
    cfg.distrib.backend = "mp"
    from repro.sim.runner import create_simulator
    sim = create_simulator(cfg)
    with pytest.raises(ZeroDivisionError):
        sim.run(_failing_program)
    assert sim._cluster is None  # run() tore the cluster down
