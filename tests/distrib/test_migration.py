"""TCP transport, live shard migration and elastic membership.

The load-bearing invariant throughout: tile placement is host-side
bookkeeping, so *any* membership change — a scripted drain, a policy
rebalance, a mid-run join — leaves every simulated metric byte-
identical to the undisturbed in-process run.
"""

from __future__ import annotations

import multiprocessing
import socket

import pytest

from repro.common.config import SimulationConfig
from repro.distrib.wire import WorkloadRef
from repro.sim.runner import create_simulator
from repro.sim.simulator import Simulator
from repro.telemetry.events import EventCategory

REF = WorkloadRef("matrix_multiply", nthreads=4, scale=0.05)


def _config(**distrib) -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=4, seed=11)
    cfg.host.num_machines = 2
    cfg.host.cores_per_machine = 2
    cfg.host.quantum_instructions = 200
    cfg.distrib.backend = "mp"
    for key, value in distrib.items():
        setattr(cfg.distrib, key, value)
    cfg.validate()
    return cfg


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _assert_same_metrics(result, reference) -> None:
    assert result.simulated_cycles == reference.simulated_cycles
    assert result.thread_cycles == reference.thread_cycles
    assert result.thread_start_cycles == reference.thread_start_cycles
    assert result.thread_instructions == reference.thread_instructions
    assert result.counters == reference.counters
    assert result.wall_clock_seconds == reference.wall_clock_seconds
    assert result.core_busy_seconds == reference.core_busy_seconds
    assert result.main_result == reference.main_result


def _net_events(sim):
    return [e for e in sim.telemetry.events
            if e.category == EventCategory.NET]


def _inproc_reference():
    cfg = SimulationConfig(num_tiles=4, seed=11)
    cfg.host.num_machines = 2
    cfg.host.cores_per_machine = 2
    cfg.host.quantum_instructions = 200
    cfg.validate()
    return Simulator(cfg).run(REF)


def test_tcp_transport_matches_pipes_and_inproc():
    inproc = _inproc_reference()
    pipes = create_simulator(_config(transport="pipe")).run(REF)
    tcp = create_simulator(_config(transport="tcp")).run(REF)
    _assert_same_metrics(pipes, inproc)
    _assert_same_metrics(tcp, inproc)


def test_scripted_drain_migrates_and_preserves_metrics():
    inproc = _inproc_reference()
    cfg = _config(transport="tcp", drain_turn=3)
    cfg.telemetry.enabled = True
    cfg.telemetry.events = ["net"]
    sim = create_simulator(cfg)
    result = sim.run(REF)
    _assert_same_metrics(result, inproc)
    names = [e.name for e in _net_events(sim)]
    assert "worker.migrated" in names
    assert "worker.left" in names
    migrated = next(e for e in _net_events(sim)
                    if e.name == "worker.migrated")
    assert migrated.args["tiles"] == 2  # a whole 2-tile shard moved


def test_drain_over_pipes_works_too():
    """Migration is carrier-agnostic: the same drain over the original
    pipe transport yields the same metrics."""
    inproc = _inproc_reference()
    cfg = _config(transport="pipe", drain_turn=2, drain_worker=0)
    result = create_simulator(cfg).run(REF)
    _assert_same_metrics(result, inproc)


def test_explicit_drain_worker_selects_the_victim():
    cfg = _config(transport="tcp", drain_turn=2, drain_worker=1)
    cfg.telemetry.enabled = True
    cfg.telemetry.events = ["net"]
    sim = create_simulator(cfg)
    sim.run(REF)
    left = next(e for e in _net_events(sim) if e.name == "worker.left")
    assert left.args["worker"] == 1


def test_elastic_join_absorbs_work_and_preserves_metrics():
    """A worker dialing in mid-run joins at a quantum boundary, and
    the rebalance policy hands it the slowest shard — with metrics
    identical to a run that never changed shape."""
    inproc = _inproc_reference()
    port = _free_port()
    cfg = _config(transport="tcp", listen=f"127.0.0.1:{port}",
                  rebalance="slowest", rebalance_every=2)
    cfg.telemetry.enabled = True
    cfg.telemetry.events = ["net"]
    # Use a longer workload so the joiner arrives mid-run.
    workload = WorkloadRef("matrix_multiply", nthreads=4, scale=0.3)
    reference_cfg = SimulationConfig(num_tiles=4, seed=11)
    reference_cfg.host.num_machines = 2
    reference_cfg.host.cores_per_machine = 2
    reference_cfg.host.quantum_instructions = 200
    reference_cfg.validate()
    reference = Simulator(reference_cfg).run(workload)

    from repro.distrib.worker import tcp_worker_main
    joiner = multiprocessing.get_context("fork").Process(
        target=tcp_worker_main, args=(f"127.0.0.1:{port}",),
        daemon=True)

    sim = create_simulator(cfg)
    original_hook = sim._net_hook
    fired = {"n": 0}

    def _hook_then_join(scheduler):
        # Launch the joiner from inside the membership hook so the
        # dial-in deterministically lands mid-run.
        if fired["n"] == 0:
            joiner.start()
        fired["n"] += 1
        original_hook(scheduler)

    sim._net_hook = _hook_then_join
    sim.scheduler._periodic_hooks = [
        (_hook_then_join if hook == original_hook else hook, period)
        for hook, period in sim.scheduler._periodic_hooks]
    result = sim.run(workload)
    joiner.join(timeout=10.0)
    _assert_same_metrics(result, reference)
    names = [e.name for e in _net_events(sim)]
    assert "worker.joined" in names
    assert "worker.migrated" in names  # idle joiner absorbed a shard


def test_drain_with_checkpoint_resume_round_trip(tmp_path):
    """A checkpoint taken *after* a migration resumes with the moved
    ownership intact and finishes byte-identical."""
    inproc = _inproc_reference()
    cfg = _config(transport="pipe", drain_turn=2)
    cfg.ckpt.dir = str(tmp_path / "ckpt")
    cfg.ckpt.every = 4  # first periodic snapshot lands post-drain
    cfg.validate()
    sim = create_simulator(cfg)
    result = sim.run(REF)
    _assert_same_metrics(result, inproc)

    from repro.ckpt.recovery import load_checkpoint
    restored, _manifest = load_checkpoint(cfg.ckpt.dir)
    resumed = restored.resume_run()
    _assert_same_metrics(resumed, inproc)
