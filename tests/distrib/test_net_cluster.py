"""WorkerCluster failure surfaces over both carriers (pipe and TCP).

The satellite contract: a peer that closes mid-frame, exits nonzero,
or fails the handshake must produce the right *typed* error promptly —
never a hang, never a bare builtin.
"""

from __future__ import annotations

import os
import signal
import socket
import struct
import threading

import pytest

from repro.common.config import SimulationConfig
from repro.distrib.coordinator import WorkerCluster
from repro.distrib.errors import WorkerCrashError
from repro.distrib.wire import WIRE_VERSION, FrameKind
from repro.host.cluster import ClusterLayout
from repro.net.handshake import HandshakeError
from repro.net.listener import connect_worker
from repro.transport.frames import recv_frame


def _dial_with_retry(port: int, wire_version: int, deadline: float = 10.0):
    """Dial a listener that a concurrent thread is still binding."""
    import time
    stop = time.monotonic() + deadline
    while True:
        try:
            return connect_worker(f"127.0.0.1:{port}", wire_version,
                                  timeout=5.0)
        except HandshakeError as exc:
            if "cannot reach" not in str(exc) or \
                    time.monotonic() > stop:
                raise
            time.sleep(0.02)


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _config(transport: str, **distrib) -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=4, seed=5)
    cfg.host.num_machines = 2
    cfg.host.cores_per_machine = 2
    cfg.distrib.transport = transport
    cfg.distrib.worker_timeout = 10.0
    cfg.distrib.shutdown_timeout = 2.0
    for key, value in distrib.items():
        setattr(cfg.distrib, key, value)
    cfg.validate()
    return cfg


@pytest.mark.parametrize("transport", ["pipe", "tcp"])
def test_killed_worker_is_crash_with_exit_code_not_hang(transport):
    cfg = _config(transport)
    layout = ClusterLayout(cfg.num_tiles, cfg.host)
    with WorkerCluster(layout, cfg) as cluster:
        victim = cluster._channels[1].proc
        assert victim is not None  # self-dialed TCP workers are local
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5.0)
        with pytest.raises(WorkerCrashError, match="worker 1"):
            cluster.send(1, FrameKind.COLLECT_STATS, None)
            cluster.recv(1)


@pytest.mark.parametrize("transport", ["pipe", "tcp"])
def test_clean_peer_close_is_crash_error_not_hang(transport):
    """A worker that exits its loop (GOODBYE) closes the channel; a
    subsequent recv must fail typed, on both carriers."""
    cfg = _config(transport)
    layout = ClusterLayout(cfg.num_tiles, cfg.host)
    with WorkerCluster(layout, cfg) as cluster:
        cluster.send(0, FrameKind.GOODBYE, None)
        proc = cluster._channels[0].proc
        if proc is not None:
            proc.join(timeout=5.0)
        with pytest.raises(WorkerCrashError, match="worker 0"):
            cluster.recv(0)


def test_tcp_peer_closing_mid_frame_is_crash_error():
    """A remote worker dying halfway through a frame write surfaces as
    a crash, not a hang on the missing bytes."""
    port = _free_port()
    cfg = _config("tcp", listen=f"127.0.0.1:{port}", expect_workers=1,
                  connect_timeout=10.0)
    layout = ClusterLayout(cfg.num_tiles, cfg.host)

    def _half_frame_worker():
        channel, _welcome = _dial_with_retry(port, WIRE_VERSION)
        channel.recv_bytes()  # the HELLO
        # Claim 1000 bytes, deliver 9, vanish.
        channel.sock.sendall(struct.pack(">I", 1000) + b"half-sent")
        channel.close()

    thread = threading.Thread(target=_half_frame_worker)
    thread.start()
    cluster = WorkerCluster(layout, cfg)
    try:
        with pytest.raises(WorkerCrashError, match="worker 0"):
            cluster.recv(0)
    finally:
        thread.join(timeout=5.0)
        cluster.shutdown()


def test_tcp_handshake_version_mismatch_fails_both_sides():
    """During cluster formation a mismatched dialer is fatal and typed
    on the coordinator, and rejected with the reason on the worker."""
    port = _free_port()
    cfg = _config("tcp", listen=f"127.0.0.1:{port}", expect_workers=1,
                  connect_timeout=10.0)
    layout = ClusterLayout(cfg.num_tiles, cfg.host)
    worker_error = {}

    def _stale_worker():
        try:
            _dial_with_retry(port, WIRE_VERSION - 1)
        except HandshakeError as exc:
            worker_error["exc"] = exc

    thread = threading.Thread(target=_stale_worker)
    thread.start()
    with pytest.raises(HandshakeError, match="wire mismatch"):
        WorkerCluster(layout, cfg)
    thread.join(timeout=5.0)
    assert "wire mismatch" in str(worker_error["exc"])


def test_mid_run_join_rejects_mismatched_peer_without_dying():
    """After formation, a bad dial-in is skipped by poll_joins — the
    running cluster keeps serving its existing workers."""
    port = _free_port()
    cfg = _config("tcp", listen=f"127.0.0.1:{port}")
    layout = ClusterLayout(cfg.num_tiles, cfg.host)
    with WorkerCluster(layout, cfg) as cluster:
        with pytest.raises(HandshakeError):
            connect_worker(f"127.0.0.1:{port}", WIRE_VERSION + 7,
                           timeout=10.0)
        assert cluster.poll_joins() == []
        assert cluster.workers() == [0, 1]
        stats = cluster.collect_stats()
        assert len(stats) == 2


def test_mid_run_join_registers_a_tileless_worker():
    port = _free_port()
    cfg = _config("tcp", listen=f"127.0.0.1:{port}")
    layout = ClusterLayout(cfg.num_tiles, cfg.host)
    joined = {}

    def _joiner():
        channel, welcome = connect_worker(f"127.0.0.1:{port}",
                                          WIRE_VERSION, timeout=10.0)
        joined["welcome"] = welcome
        joined["hello_blob"] = channel.recv_bytes()
        channel.close()

    with WorkerCluster(layout, cfg) as cluster:
        thread = threading.Thread(target=_joiner)
        thread.start()
        import time
        new = []
        for _ in range(250):
            new = cluster.poll_joins()
            if new:
                break
            time.sleep(0.02)
        thread.join(timeout=5.0)
        assert new == [2]
        assert cluster.tiles_of(2) == []
        assert cluster.workers() == [0, 1, 2]
        assert joined["welcome"].config_fingerprint == \
            cfg.content_hash()
        cluster._active[2] = False  # joiner hung up; skip its SHUTDOWN
