"""Sweep-pool tests: parallel results match serial, failures surface."""

from __future__ import annotations

import os
import signal

import pytest

from repro.common.config import SimulationConfig
from repro.distrib.errors import (
    JobRetryExhaustedError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.distrib.pool import parallel_repeat, run_jobs
from repro.distrib.wire import WorkloadRef
from repro.sim.experiment import repeat_runs, sweep

REF = WorkloadRef("matrix_multiply", nthreads=2, scale=0.05)


def _configs(n: int = 4):
    out = []
    for i in range(n):
        cfg = SimulationConfig(num_tiles=2, seed=100 + i)
        cfg.host.quantum_instructions = 200
        out.append(cfg)
    return out


def _crashing_program(ctx):
    yield from ctx.compute(5)
    raise RuntimeError("job exploded")


def _hanging_program(ctx):
    import time
    while True:  # never yields: the pool child is stuck forever
        time.sleep(0.05)
    yield  # pragma: no cover - makes this a generator program


def test_parallel_sweep_matches_serial():
    configs = _configs()
    serial = sweep(configs, REF)
    parallel = sweep(configs, REF, workers=2)
    assert len(parallel) == len(serial)
    for a, b in zip(serial, parallel):
        assert a.simulated_cycles == b.simulated_cycles
        assert a.counters == b.counters
        assert a.wall_clock_seconds == b.wall_clock_seconds


def test_parallel_repeat_matches_serial():
    cfg = _configs(1)[0]
    serial = repeat_runs(cfg, REF, runs=3)
    parallel = repeat_runs(cfg, REF, runs=3, workers=2)
    assert parallel.simulated_cycles == serial.simulated_cycles
    assert parallel.mean_wall_clock == serial.mean_wall_clock


def test_pool_results_keep_job_order():
    configs = _configs(5)
    results = run_jobs([(c, REF, ()) for c in configs], workers=3)
    serial = sweep(configs, REF)
    assert [r.simulated_cycles for r in results] \
        == [r.simulated_cycles for r in serial]


def test_pool_surfaces_child_failure_with_traceback():
    configs = _configs(2)
    with pytest.raises(WorkerCrashError) as excinfo:
        run_jobs([(c, _crashing_program, ()) for c in configs],
                 workers=2)
    assert "job exploded" in str(excinfo.value)
    assert "_crashing_program" in str(excinfo.value)


def test_serial_fallback_propagates_original_exception():
    """With one job (or workers=1) there is no pool: faults keep their
    original type exactly as a direct Simulator.run would raise them."""
    cfg = _configs(1)[0]
    with pytest.raises(RuntimeError, match="job exploded"):
        run_jobs([(cfg, _crashing_program, ())], workers=2)


def test_pool_forces_inproc_in_children():
    """A job config asking for the mp backend must not nest clusters."""
    cfg = _configs(1)[0]
    cfg.distrib.backend = "mp"
    results = run_jobs([(cfg, REF, ())], workers=2)
    baseline = sweep(_configs(1), REF)[0]
    assert results[0].simulated_cycles == baseline.simulated_cycles


def test_empty_and_single_worker_paths():
    assert run_jobs([], workers=4) == []
    cfg = _configs(1)[0]
    serial = run_jobs([(cfg, REF, ())], workers=1)
    assert serial[0].simulated_cycles \
        == sweep(_configs(1), REF)[0].simulated_cycles


def test_parallel_repeat_seed_protocol():
    cfg = _configs(1)[0]
    results = parallel_repeat(cfg, REF, runs=2, workers=2)
    assert len(results) == 2


def test_pool_deadline_names_unfinished_jobs():
    """A pool whose children never respond must surface a diagnosable
    timeout — which jobs are stuck and whether workers are alive — and
    never hang the caller."""
    configs = _configs(2)
    with pytest.raises(WorkerTimeoutError) as excinfo:
        run_jobs([(c, _hanging_program, ()) for c in configs],
                 workers=2, timeout=1.0)
    message = str(excinfo.value)
    assert "2 job(s) unfinished" in message
    assert "indices 0, 1" in message
    assert "pool workers still alive" in message
    # The pool error is part of the DistribError hierarchy, not a bare
    # builtin TimeoutError that callers could mistake for an IPC-level
    # timeout.
    assert not isinstance(excinfo.value, TimeoutError)


def _die_once_program(ctx, marker):
    """SIGKILL the hosting pool child on the first attempt only."""
    yield from ctx.compute(5)
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("first attempt died here")
        os.kill(os.getpid(), signal.SIGKILL)
    yield from ctx.compute(5)
    return "recovered"


def _die_always_program(ctx):
    """SIGKILL the hosting pool child on every attempt."""
    yield from ctx.compute(5)
    os.kill(os.getpid(), signal.SIGKILL)
    yield  # pragma: no cover


def test_pool_requeues_jobs_of_dead_worker(tmp_path):
    """A SIGKILLed child fails nothing: its in-flight job reruns on a
    survivor and the sweep completes with every result."""
    marker = str(tmp_path / "died-once")
    configs = _configs(3)
    jobs = [(configs[0], _die_once_program, (marker,)),
            (configs[1], REF, ()),
            (configs[2], REF, ())]
    results = run_jobs(jobs, workers=2)
    assert os.path.exists(marker), "no child ever died"
    assert len(results) == 3
    assert results[0].main_result == "recovered"
    baseline = run_jobs([(configs[1], REF, ())], workers=1)[0]
    assert results[1].simulated_cycles == baseline.simulated_cycles


def test_pool_retry_budget_names_the_job(tmp_path):
    """A job that keeps killing its hosts exhausts ``max_attempts`` and
    the error names the job and its start count."""
    configs = _configs(3)
    jobs = [(configs[0], _die_always_program, ()),
            (configs[1], REF, ()),
            (configs[2], REF, ())]
    with pytest.raises(JobRetryExhaustedError) as excinfo:
        run_jobs(jobs, workers=2, max_attempts=1)
    assert excinfo.value.job_index == 0
    assert excinfo.value.attempts == 1
    assert "sweep job 0" in str(excinfo.value)
    assert "retry budget" in str(excinfo.value)
    from repro.distrib.errors import DistribError
    assert isinstance(excinfo.value, DistribError)


def test_pool_deadline_truncates_long_unfinished_list():
    """With many stuck jobs the message stays bounded (first 8 + ...)."""
    configs = _configs(10)
    with pytest.raises(WorkerTimeoutError,
                       match=r"indices 0, 1, 2, 3, 4, 5, 6, 7, \.\.\."):
        run_jobs([(c, _hanging_program, ()) for c in configs],
                 workers=2, timeout=0.5)


def test_effective_workers_capped_at_job_count():
    from repro.distrib.pool import _effective_workers
    assert _effective_workers(8, 2) == 2
    assert _effective_workers(2, 8) == 2
    assert _effective_workers(0, 5) == 1
    assert _effective_workers(4, 0) == 1
    assert _effective_workers(3, 3) == 3


def test_pool_never_forks_more_children_than_jobs(monkeypatch):
    """Two jobs on an eight-way pool must fork exactly two children:
    surplus children would be pure fork cost (start, find the queue
    drained, exit)."""
    import repro.distrib.pool as pool_mod
    real_get_context = pool_mod.multiprocessing.get_context
    spawned = []

    class CountingCtx:
        def __init__(self, ctx):
            self._ctx = ctx

        def __getattr__(self, name):
            return getattr(self._ctx, name)

        def Process(self, *args, **kwargs):
            spawned.append(kwargs.get("name"))
            return self._ctx.Process(*args, **kwargs)

    monkeypatch.setattr(
        pool_mod.multiprocessing, "get_context",
        lambda kind: CountingCtx(real_get_context(kind)))
    configs = _configs(2)
    results = run_jobs([(cfg, REF, ()) for cfg in configs], workers=8)
    assert len(results) == 2
    assert len(spawned) == 2


def test_single_job_takes_the_serial_path(monkeypatch):
    """One job never forks at all — the serial fallback runs it
    in-process regardless of the requested pool width."""
    import repro.distrib.pool as pool_mod

    def explode(kind):  # any fork attempt fails the test
        raise AssertionError("pool forked for a single job")

    monkeypatch.setattr(pool_mod.multiprocessing, "get_context",
                        explode)
    [result] = run_jobs([(_configs(1)[0], REF, ())], workers=8)
    assert result.simulated_cycles > 0
