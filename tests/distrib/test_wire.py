"""Wire-format tests: pickling of messages, configs, frames, results."""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SimulationConfig
from repro.common.errors import ConfigError
from repro.common.ids import TileId
from repro.distrib.errors import ProgramTransportError, WireFormatError
from repro.distrib.wire import (
    WIRE_VERSION,
    FrameKind,
    PickledProgram,
    ShardCheckpoint,
    WorkloadRef,
    decode_frame,
    encode_frame,
    make_program_ref,
    program_key,
)
from repro.sim.results import SimulationResult
from repro.transport.message import Message, MessageKind
import repro.transport.message as message_module


def _module_level_program(ctx):  # used by pickling tests
    yield from ctx.compute(1)


payloads = st.one_of(
    st.none(),
    st.integers(),
    st.binary(max_size=64),
    st.tuples(st.integers(min_value=0, max_value=63),
              st.binary(max_size=32)),
    st.dictionaries(st.text(max_size=8), st.integers(), max_size=4),
)


@settings(max_examples=200, deadline=None)
@given(
    src=st.integers(min_value=0, max_value=1023),
    dst=st.integers(min_value=0, max_value=1023),
    kind=st.sampled_from(list(MessageKind)),
    payload=payloads,
    size_bytes=st.integers(min_value=0, max_value=1 << 20),
    timestamp=st.integers(min_value=0, max_value=1 << 40),
    arrival=st.integers(min_value=0, max_value=1 << 40),
    tag=st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 16)),
)
def test_message_roundtrip(src, dst, kind, payload, size_bytes,
                           timestamp, arrival, tag):
    """Every field of every message kind survives a pickle round trip."""
    msg = Message(src=TileId(src), dst=TileId(dst), kind=kind,
                  payload=payload, size_bytes=size_bytes,
                  timestamp=timestamp, arrival_time=arrival, tag=tag)
    clone = pickle.loads(pickle.dumps(msg))
    assert clone.src == msg.src and isinstance(clone.src, TileId)
    assert clone.dst == msg.dst and isinstance(clone.dst, TileId)
    assert clone.kind is msg.kind
    assert clone.payload == msg.payload
    assert clone.size_bytes == msg.size_bytes
    assert clone.timestamp == msg.timestamp
    assert clone.arrival_time == msg.arrival_time
    assert clone.seqno == msg.seqno
    assert clone.tag == msg.tag
    assert clone.latency == msg.latency


def test_message_unpickle_preserves_seqno_without_consuming_counter():
    """Unpickling restores seqno and must not bump the global sequence.

    Physical send order is assigned exactly once, by the process that
    created the message — otherwise coordinator and worker counters
    would diverge and delivery order would not be reproducible.
    """
    msg = Message(src=TileId(0), dst=TileId(1), kind=MessageKind.USER)
    blob = pickle.dumps(msg)
    before = next(message_module._sequence)
    clone = pickle.loads(blob)
    after = next(message_module._sequence)
    assert clone.seqno == msg.seqno
    assert after == before + 1  # only our probes consumed the counter


def test_message_version_mismatch_rejected():
    msg = Message(src=TileId(0), dst=TileId(1), kind=MessageKind.MEMORY)
    state = list(msg.__getstate__())
    state[0] = 999
    clone = Message.__new__(Message)
    with pytest.raises(ValueError, match="version"):
        clone.__setstate__(tuple(state))


def test_config_roundtrip_deep():
    cfg = SimulationConfig(num_tiles=16, seed=123)
    cfg.sync.model = "lax_barrier"
    cfg.host.num_machines = 2
    cfg.memory.directory_type = "limited"
    cfg.distrib.backend = "mp"
    clone = pickle.loads(pickle.dumps(cfg))
    assert clone.to_dict() == cfg.to_dict()
    clone.validate()


def test_config_version_mismatch_rejected():
    cfg = SimulationConfig(num_tiles=2)
    state = cfg.__getstate__()
    state["version"] = -1
    clone = SimulationConfig.__new__(SimulationConfig)
    with pytest.raises(ConfigError):
        clone.__setstate__(state)


def test_result_roundtrip():
    result = SimulationResult(
        simulated_cycles=1000, wall_clock_seconds=0.5, native_seconds=0.1,
        thread_cycles={0: 1000, 1: 900},
        thread_instructions={0: 50, 1: 40},
        counters={"sim.transport.messages_sent": 7},
        thread_start_cycles={0: 0, 1: 10},
        main_result=("ok", 42))
    clone = pickle.loads(pickle.dumps(result))
    assert clone == result
    assert clone.parallel_cycles == result.parallel_cycles


@settings(max_examples=50, deadline=None)
@given(kind=st.sampled_from(list(FrameKind)), payload=payloads)
def test_frame_roundtrip(kind, payload):
    decoded_kind, decoded = decode_frame(encode_frame(kind, payload))
    assert decoded_kind is kind
    assert decoded == payload


def test_frame_version_mismatch_rejected():
    blob = pickle.dumps((WIRE_VERSION + 1, FrameKind.HELLO.value, None))
    with pytest.raises(WireFormatError, match="version"):
        decode_frame(blob)


def test_frame_garbage_rejected():
    with pytest.raises(WireFormatError):
        decode_frame(b"not a frame")


def test_workload_ref_resolves_and_roundtrips():
    ref = WorkloadRef("matrix_multiply", nthreads=2, scale=0.05)
    clone = pickle.loads(pickle.dumps(ref))
    assert clone == ref
    program = clone.resolve()
    assert callable(program)


def test_make_program_ref_passthrough_and_pickled():
    ref = WorkloadRef("fft", 2)
    assert make_program_ref(ref) is ref
    shipped = make_program_ref(_module_level_program)
    assert isinstance(shipped, PickledProgram)
    assert shipped.resolve() is _module_level_program


def test_make_program_ref_rejects_closures():
    captured = 3

    def closure_program(ctx):
        yield from ctx.compute(captured)

    with pytest.raises(ProgramTransportError, match="module-level"):
        make_program_ref(closure_program)


def test_program_key_stable_across_equal_refs():
    a = WorkloadRef("radix", 4, 1.0)
    b = WorkloadRef("radix", 4, 1.0)
    assert program_key(a) == program_key(b)
    assert program_key(a) != program_key(WorkloadRef("radix", 8, 1.0))


# -- telemetry frames (wire v2) ----------------------------------------------


def test_wire_version_covers_telemetry_frames():
    """v2 added TELEMETRY/COLLECT_TELEMETRY; the version must say so."""
    assert WIRE_VERSION >= 2
    assert FrameKind.TELEMETRY.value == "telemetry"
    assert FrameKind.COLLECT_TELEMETRY.value == "collect_telemetry"


def test_telemetry_event_frame_roundtrip():
    from repro.telemetry.events import Event, EventCategory

    event = Event(EventCategory.NETWORK, "msg", 3, 1234,
                  {"src": 3, "dst": 0, "bytes": 64, "latency": 12},
                  seq=41, origin=0)
    kind, decoded = decode_frame(
        encode_frame(FrameKind.TELEMETRY, [event]))
    assert kind is FrameKind.TELEMETRY
    assert decoded == [event]
    assert decoded[0].args == event.args
    assert decoded[0].content_key() == event.content_key()


def test_telemetry_batch_frame_roundtrip():
    from repro.common.stats import Histogram
    from repro.telemetry.aggregate import TelemetryBatch
    from repro.telemetry.events import Event, EventCategory

    hist = Histogram("sleep")
    for v in (0.25, 0.5, 1.0):
        hist.record(v)
    batch = TelemetryBatch(
        worker=2,
        events=[Event(EventCategory.SYNC, "stall", 5, 900,
                      {"cycles": 44, "kind": "sync"}, seq=7),
                Event(EventCategory.WORKER, "interp_spawn", 5, 0,
                      {"worker": 2}, seq=8)],
        histograms={"sim.thread5.sleep": hist.state()})
    kind, decoded = decode_frame(encode_frame(FrameKind.TELEMETRY, batch))
    assert kind is FrameKind.TELEMETRY
    assert decoded.worker == 2
    assert decoded.events == batch.events
    assert len(decoded) == 2

    merged = Histogram("sleep")
    merged.merge_state(decoded.histograms["sim.thread5.sleep"])
    assert merged.count == 3
    assert merged.mean == hist.mean
    assert merged.min == hist.min and merged.max == hist.max


def test_collect_telemetry_frame_roundtrip():
    kind, payload = decode_frame(
        encode_frame(FrameKind.COLLECT_TELEMETRY, None))
    assert kind is FrameKind.COLLECT_TELEMETRY
    assert payload is None


# -- checkpoint frames (wire v4) ---------------------------------------------


def test_wire_version_covers_checkpoint_frames():
    """v4 added CHECKPOINT/CKPT_ACK/RESTORE; the version must say so."""
    assert WIRE_VERSION >= 4
    assert FrameKind.CHECKPOINT.value == "checkpoint"
    assert FrameKind.CKPT_ACK.value == "ckpt_ack"
    assert FrameKind.RESTORE.value == "restore"


def test_shard_checkpoint_frame_roundtrip():
    shard = ShardCheckpoint(worker=1, blob=b"\x80\x05surgical-pickle")
    kind, decoded = decode_frame(encode_frame(FrameKind.CKPT_ACK, shard))
    assert kind is FrameKind.CKPT_ACK
    assert decoded == shard
    assert decoded.worker == 1
    assert decoded.blob == shard.blob


def test_restore_frame_carries_raw_bytes():
    """RESTORE ships the shard blob verbatim — the coordinator never
    unpickles a worker's state on its own side."""
    blob = bytes(range(256))
    kind, decoded = decode_frame(encode_frame(FrameKind.RESTORE, blob))
    assert kind is FrameKind.RESTORE
    assert decoded == blob
