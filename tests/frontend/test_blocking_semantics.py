"""Blocking-op retry semantics: spurious wakes, re-registration, races.

The interpreter retries the *same op object* after a wake; these tests
target the subtle paths: a wake for one condition arriving while a
thread is blocked on another, re-checks that must not repeat side
effects, and contended-lock handoff chains.
"""


from repro.sim.simulator import Simulator
from tests.conftest import tiny_config


def run(program, tiles=4):
    simulator = Simulator(tiny_config(tiles))
    result = simulator.run(program)
    simulator.engine.check_coherence_invariants()
    return result


class TestSpuriousWakes:
    def test_message_wake_does_not_break_lock_wait(self):
        """A user message arriving at a thread blocked on a lock is a
        spurious wake: the thread must re-block until the real unlock."""
        def holder(ctx, lock, flag):
            yield from ctx.lock(lock)
            # Hold the lock long enough for the waiter to block, get
            # poked by a message, and re-block.
            yield from ctx.compute(100_000)
            yield from ctx.store_u64(flag, 1)
            yield from ctx.unlock(lock)

        def poker(ctx, waiter_tile):
            for _ in range(20):
                yield from ctx.send_u64(waiter_tile, 0, tag=1)
                yield from ctx.compute(2_000)

        def main(ctx):
            lock = yield from ctx.calloc(8, align=64)
            flag = yield from ctx.calloc(8, align=64)
            holder_thread = yield from ctx.spawn(holder, lock, flag)
            yield from ctx.compute(5_000)  # let the holder acquire
            poker_thread = yield from ctx.spawn(poker, 0)
            yield from ctx.lock(lock)      # block; poked repeatedly
            value = yield from ctx.load_u64(flag)
            yield from ctx.unlock(lock)
            yield from ctx.join(holder_thread)
            yield from ctx.join(poker_thread)
            return value

        # The flag is 1: the lock was only granted after the holder's
        # critical section finished, despite the message wake-ups.
        assert run(main).main_result == 1

    def test_message_wake_does_not_break_barrier_wait(self):
        def arriver(ctx, barrier, order, slot):
            yield from ctx.barrier(barrier, 3)
            yield from ctx.store_u64(order + slot * 8, 1)

        def poker_then_arrive(ctx, barrier, target):
            for _ in range(10):
                yield from ctx.send_u64(target, 0, tag=9)
                yield from ctx.compute(3_000)
            yield from ctx.barrier(barrier, 3)

        def main(ctx):
            barrier = yield from ctx.calloc(8, align=64)
            order = yield from ctx.calloc(16, align=64)
            a = yield from ctx.spawn(arriver, barrier, order, 0)
            b = yield from ctx.spawn(poker_then_arrive, barrier, 1)
            yield from ctx.barrier(barrier, 3)
            yield from ctx.join(a)
            yield from ctx.join(b)
            return (yield from ctx.load_u64(order))

        assert run(main).main_result == 1

    def test_join_survives_spurious_message(self):
        def slow_child(ctx):
            yield from ctx.compute(80_000)

        def poker(ctx, target):
            for _ in range(10):
                yield from ctx.send_u64(target, 7, tag=3)
                yield from ctx.compute(2_000)

        def main(ctx):
            child = yield from ctx.spawn(slow_child)
            poker_thread = yield from ctx.spawn(poker, 0)
            yield from ctx.join(child)      # poked while joining
            yield from ctx.join(poker_thread)
            # The messages are still all queued afterwards.
            total = 0
            for _ in range(10):
                _, value = yield from ctx.recv_u64(tag=3)
                total += value
            return total

        assert run(main).main_result == 70


class TestLockHandoff:
    def test_fifo_chain_of_waiters(self):
        """Three threads contend; each eventually gets the lock once."""
        def worker(ctx, index, lock, log, cursor):
            yield from ctx.lock(lock)
            position = yield from ctx.load_u64(cursor)
            yield from ctx.store_u64(log + position * 8, index + 1)
            yield from ctx.store_u64(cursor, position + 1)
            yield from ctx.compute(10_000)  # long critical section
            yield from ctx.unlock(lock)

        def main(ctx):
            lock = yield from ctx.calloc(8, align=64)
            log = yield from ctx.calloc(64, align=64)
            cursor = yield from ctx.calloc(8, align=64)
            threads = yield from ctx.spawn_workers(worker, 3, lock, log,
                                                   cursor)
            yield from ctx.join_all(threads)
            entries = []
            for i in range(3):
                entries.append((yield from ctx.load_u64(log + i * 8)))
            return sorted(entries)

        # All three critical sections executed exactly once.
        assert run(main).main_result == [1, 2, 3]

    def test_unlock_without_waiters_is_cheap(self):
        def main(ctx):
            lock = yield from ctx.calloc(8, align=64)
            for _ in range(10):
                yield from ctx.lock(lock)
                yield from ctx.unlock(lock)
            return True

        result = run(main)
        assert result.main_result is True
        assert result.counter("mcp.futex.futex_waits") == 0


class TestRecvOrderingUnderContention:
    def test_multiple_senders_one_receiver(self):
        def sender(ctx, index, target):
            for i in range(5):
                yield from ctx.send_u64(target, index * 10 + i, tag=4)

        def main(ctx):
            threads = yield from ctx.spawn_workers(sender, 3, 0)
            got = []
            for _ in range(15):
                _, value = yield from ctx.recv_u64(tag=4)
                got.append(value)
            yield from ctx.join_all(threads)
            # Per-sender FIFO: each sender's values appear in order.
            for sender_index in range(3):
                own = [v for v in got
                       if v // 10 == sender_index]
                assert own == sorted(own)
            return len(got)

        assert run(main).main_result == 15
