"""The interpreter: op execution, timing, blocking semantics."""

import pytest

from repro.common.errors import SimulationError, TargetFault
from repro.core.isa import InstructionClass
from repro.sim.simulator import Simulator
from tests.conftest import tiny_config


def run(program, args=(), tiles=4, config=None):
    cfg = config if config is not None else tiny_config(tiles)
    simulator = Simulator(cfg)
    result = simulator.run(program, args)
    return simulator, result


class TestCompute:
    def test_compute_advances_clock(self):
        def main(ctx):
            yield from ctx.compute(100)
        _, result = run(main)
        assert result.simulated_cycles >= 100

    def test_instruction_classes_have_costs(self):
        def cheap(ctx):
            yield from ctx.compute(100, InstructionClass.IALU)

        def expensive(ctx):
            yield from ctx.compute(100, InstructionClass.FPU_DIV)

        _, a = run(cheap)
        _, b = run(expensive)
        assert b.simulated_cycles > a.simulated_cycles

    def test_instruction_counting(self):
        def main(ctx):
            yield from ctx.compute(250)
        _, result = run(main)
        assert result.total_instructions >= 250

    def test_branches_feed_predictor(self):
        def main(ctx):
            for i in range(50):
                yield from ctx.branch(True, pc=0x400)
        _, result = run(main)
        assert result.counter("branch.branches") == 50
        assert result.counter("branch.mispredictions") >= 1


class TestMemoryOps:
    def test_load_returns_stored_bytes(self):
        def main(ctx):
            address = yield from ctx.malloc(64)
            yield from ctx.store(address, b"ABCD1234")
            data = yield from ctx.load(address, 8)
            return data
        _, result = run(main)
        assert result.main_result == b"ABCD1234"

    def test_typed_helpers_round_trip(self):
        def main(ctx):
            address = yield from ctx.malloc(64)
            yield from ctx.store_f64(address, 3.5)
            yield from ctx.store_i64(address + 8, -42)
            yield from ctx.store_u32(address + 16, 7)
            f = yield from ctx.load_f64(address)
            i = yield from ctx.load_i64(address + 8)
            u = yield from ctx.load_u32(address + 16)
            return (f, i, u)
        _, result = run(main)
        assert result.main_result == (3.5, -42, 7)

    def test_memset_memcpy(self):
        def main(ctx):
            src = yield from ctx.calloc(128)
            dst = yield from ctx.malloc(128)
            yield from ctx.memset(src, 0xAB, 128)
            yield from ctx.memcpy(dst, src, 128)
            data = yield from ctx.load(dst + 100, 4)
            return data
        _, result = run(main)
        assert result.main_result == b"\xab" * 4

    def test_free_then_use_other_allocation(self):
        def main(ctx):
            a = yield from ctx.malloc(64)
            yield from ctx.free(a)
            b = yield from ctx.malloc(64)
            yield from ctx.store_u64(b, 9)
            return (yield from ctx.load_u64(b))
        _, result = run(main)
        assert result.main_result == 9

    def test_kernel_access_faults(self):
        def main(ctx):
            yield from ctx.load(0xF000_0000, 8)
        with pytest.raises(TargetFault):
            run(main)


class TestSpawnJoin:
    def test_child_runs_and_joins(self):
        def child(ctx, value, cell):
            yield from ctx.store_u64(cell, value * 2)

        def main(ctx):
            cell = yield from ctx.malloc(8)
            thread = yield from ctx.spawn(child, 21, cell)
            yield from ctx.join(thread)
            return (yield from ctx.load_u64(cell))
        _, result = run(main)
        assert result.main_result == 42

    def test_join_forwards_clock(self):
        def child(ctx):
            yield from ctx.compute(50_000)

        def main(ctx):
            thread = yield from ctx.spawn(child)
            yield from ctx.join(thread)
        _, result = run(main)
        # Main's final clock must be at least the child's work.
        assert result.thread_cycles[0] >= 50_000

    def test_spawn_beyond_tiles_faults(self):
        def child(ctx):
            yield from ctx.compute(10)

        def main(ctx):
            for _ in range(10):  # only 4 tiles exist
                yield from ctx.spawn(child)
        with pytest.raises(TargetFault):
            run(main, tiles=4)

    def test_tile_reuse_after_completion(self):
        def child(ctx):
            yield from ctx.compute(10)

        def main(ctx):
            for _ in range(6):  # sequential spawn/join: reuse is fine
                thread = yield from ctx.spawn(child)
                yield from ctx.join(thread)
            return True
        _, result = run(main, tiles=3)
        assert result.main_result is True

    def test_spawned_thread_clock_starts_at_parent(self):
        def child(ctx, cell):
            yield from ctx.store_u64(cell, 1)

        def main(ctx):
            yield from ctx.compute(10_000)
            cell = yield from ctx.malloc(8)
            thread = yield from ctx.spawn(child, cell)
            yield from ctx.join(thread)
        simulator, _ = run(main)
        # The child's final clock includes the parent's 10k cycles.
        child_clock = [i.core.cycles
                       for t, i in simulator.interpreters.items()
                       if int(t) == 1]
        assert child_clock[0] >= 10_000


class TestSyscallsFromPrograms:
    def test_file_round_trip(self):
        from repro.system.syscalls import O_CREAT

        def main(ctx):
            fd = yield from ctx.open("/data.bin", O_CREAT)
            yield from ctx.write(fd, b"payload")
            yield from ctx.syscall("lseek", fd, 0)
            data = yield from ctx.read(fd, 7)
            stat = yield from ctx.fstat(fd)
            yield from ctx.close(fd)
            return (data, stat["st_size"])
        _, result = run(main)
        assert result.main_result == (b"payload", 7)

    def test_cross_thread_file_descriptor(self):
        """One thread writes, another reads the same fd (paper §3.4)."""
        from repro.system.syscalls import O_CREAT

        def reader(ctx, fd, cell):
            yield from ctx.syscall("lseek", fd, 0)
            data = yield from ctx.read(fd, 2)
            yield from ctx.store(cell, data)

        def main(ctx):
            cell = yield from ctx.calloc(8)
            fd = yield from ctx.open("/shared", O_CREAT)
            yield from ctx.write(fd, b"OK")
            thread = yield from ctx.spawn(reader, fd, cell)
            yield from ctx.join(thread)
            return (yield from ctx.load(cell, 2))
        _, result = run(main)
        assert result.main_result == b"OK"

    def test_syscall_charges_cycles(self):
        def noop(ctx):
            yield from ctx.compute(1)

        def with_syscalls(ctx):
            yield from ctx.compute(1)
            for _ in range(10):
                yield from ctx.syscall("brk", 0)
        _, a = run(noop)
        _, b = run(with_syscalls)
        assert b.simulated_cycles > a.simulated_cycles + 1000


class TestUnknownOp:
    def test_unknown_op_rejected(self):
        def main(ctx):
            yield "not an op"
        with pytest.raises(SimulationError):
            run(main)
