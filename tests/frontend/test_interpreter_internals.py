"""Interpreter internals: fetch modeling, code placement, costs."""

import pytest

from repro.sim.simulator import Simulator
from tests.conftest import tiny_config


class TestInstructionFetch:
    def test_fetch_modeled_when_l1i_enabled(self):
        def main(ctx):
            yield from ctx.compute(2000)

        config = tiny_config(2)
        simulator = Simulator(config)
        result = simulator.run(main)
        assert result.counter(".fetches") > 0

    def test_fetch_skipped_when_l1i_disabled(self):
        def main(ctx):
            yield from ctx.compute(2000)

        config = tiny_config(2)
        config.memory.l1i.enabled = False
        config.memory.l1d.enabled = False
        simulator = Simulator(config)
        result = simulator.run(main)
        assert result.counter(".fetches") == 0

    def test_hot_loop_hits_l1i(self):
        def main(ctx):
            for _ in range(200):
                yield from ctx.compute(10)

        simulator = Simulator(tiny_config(2))
        result = simulator.run(main)
        counters = result.counters
        lookups = sum(v for k, v in counters.items()
                      if ".l1i.lookups" in k)
        hits = sum(v for k, v in counters.items()
                   if ".l1i.hits" in k)
        assert lookups > 100
        assert hits / lookups > 0.9  # warm loop


class TestCodePlacement:
    def test_distinct_programs_distinct_code(self):
        simulator = Simulator(tiny_config(2))

        def a(ctx):
            yield from ctx.compute(1)

        def b(ctx):
            yield from ctx.compute(1)

        base_a = simulator.code_base(a)
        base_b = simulator.code_base(b)
        assert base_a != base_b

    def test_same_program_same_code(self):
        simulator = Simulator(tiny_config(2))

        def a(ctx):
            yield from ctx.compute(1)

        assert simulator.code_base(a) == simulator.code_base(a)

    def test_code_lands_in_code_segment(self):
        from repro.memory.address import Segment
        simulator = Simulator(tiny_config(2))

        def a(ctx):
            yield from ctx.compute(1)

        base = simulator.code_base(a)
        assert simulator.space.segment_of(base) is Segment.CODE

    def test_threads_share_program_code(self):
        """Workers running the same program share its code lines."""
        def worker(ctx, index):
            for _ in range(50):
                yield from ctx.compute(20)

        def main(ctx):
            threads = yield from ctx.spawn_workers(worker, 2)
            yield from ctx.join_all(threads)

        simulator = Simulator(tiny_config(4))
        simulator.run(main)
        # Worker code lines have 2 sharers in some directory entry.
        shared_code = 0
        for directory in simulator.engine.directories:
            for address, entry in directory.entries.items():
                if address < simulator.space.STATIC_BASE and \
                        len(entry.sharers) >= 2:
                    shared_code += 1
        assert shared_code > 0


class TestErrorPropagation:
    def test_target_fault_surfaces_from_run(self):
        from repro.common.errors import TargetFault

        def main(ctx):
            yield from ctx.free(0xDEAD)

        with pytest.raises(TargetFault):
            Simulator(tiny_config(2)).run(main)

    def test_python_error_in_program_surfaces(self):
        def main(ctx):
            yield from ctx.compute(1)
            raise RuntimeError("bug in target program")

        with pytest.raises(RuntimeError):
            Simulator(tiny_config(2)).run(main)


class TestHostCharging:
    def test_memory_ops_charge_host_time(self):
        def light(ctx):
            yield from ctx.compute(100)

        def heavy(ctx):
            base = yield from ctx.malloc(8192, align=64)
            for i in range(128):
                yield from ctx.store_u64(base + i * 64, i)

        light_result = Simulator(tiny_config(2)).run(light)
        heavy_result = Simulator(tiny_config(2)).run(heavy)
        assert sum(heavy_result.core_busy_seconds.values()) > \
            sum(light_result.core_busy_seconds.values())

    def test_send_charges_wake(self):
        def main(ctx):
            def receiver(ctx):
                yield from ctx.recv_u64()

            thread = yield from ctx.spawn(receiver)
            yield from ctx.compute(1000)
            yield from ctx.send_u64(thread, 1)
            yield from ctx.join(thread)

        result = Simulator(tiny_config(2)).run(main)
        assert result.counter("network.user_net.packets") == 1
