"""Locks, barriers and messaging through the full stack."""

import pytest

from repro.common.errors import DeadlockError
from repro.sim.simulator import Simulator
from tests.conftest import tiny_config


def run(program, args=(), tiles=4):
    simulator = Simulator(tiny_config(tiles))
    return simulator.run(program, args)


class TestLocks:
    def test_mutual_exclusion_under_contention(self):
        """N threads x M lock-protected increments == N*M."""
        def worker(ctx, index, lock, counter):
            for _ in range(10):
                yield from ctx.lock(lock)
                value = yield from ctx.load_u64(counter)
                yield from ctx.compute(20)  # widen the race window
                yield from ctx.store_u64(counter, value + 1)
                yield from ctx.unlock(lock)

        def main(ctx):
            lock = yield from ctx.calloc(8)
            counter = yield from ctx.calloc(8)
            threads = yield from ctx.spawn_workers(worker, 3, lock,
                                                   counter)
            yield from worker(ctx, 99, lock, counter)
            yield from ctx.join_all(threads)
            return (yield from ctx.load_u64(counter))

        result = run(main)
        assert result.main_result == 40

    def test_uncontended_lock_is_fast(self):
        def main(ctx):
            lock = yield from ctx.calloc(8)
            yield from ctx.lock(lock)
            yield from ctx.unlock(lock)
            return True
        assert run(main).main_result is True

    def test_two_locks_no_interference(self):
        def worker(ctx, index, lock_a, lock_b, cell):
            lock = lock_a if index % 2 == 0 else lock_b
            for _ in range(5):
                yield from ctx.lock(lock)
                v = yield from ctx.load_u64(cell + 8 * (index % 2))
                yield from ctx.store_u64(cell + 8 * (index % 2), v + 1)
                yield from ctx.unlock(lock)

        def main(ctx):
            lock_a = yield from ctx.calloc(8, align=64)
            lock_b = yield from ctx.calloc(8, align=64)
            cell = yield from ctx.calloc(16, align=64)
            threads = yield from ctx.spawn_workers(
                worker, 3, lock_a, lock_b, cell)
            yield from worker(ctx, 3, lock_a, lock_b, cell)
            yield from ctx.join_all(threads)
            a = yield from ctx.load_u64(cell)
            b = yield from ctx.load_u64(cell + 8)
            return (a, b)

        assert run(main).main_result == (10, 10)

    def test_deadlock_detected(self):
        def main(ctx):
            lock = yield from ctx.calloc(8)
            yield from ctx.lock(lock)
            yield from ctx.lock(lock)  # self-deadlock
        with pytest.raises(DeadlockError):
            run(main)


class TestBarriers:
    def test_barrier_synchronizes_clocks(self):
        """After a barrier, no thread's clock may precede the arrival
        clock of the slowest participant."""
        def worker(ctx, index, barrier, out):
            yield from ctx.compute(100 if index else 50_000)
            yield from ctx.barrier(barrier, 2)
            yield from ctx.store_u64(out + 8 * index, 1)

        def main(ctx):
            barrier = yield from ctx.calloc(8)
            out = yield from ctx.calloc(16)
            threads = yield from ctx.spawn_workers(worker, 1, barrier,
                                                   out)
            yield from worker(ctx, 0, barrier, out)
            yield from ctx.join_all(threads)
            return True

        simulator = Simulator(tiny_config(4))
        simulator.run(main)
        clocks = [i.core.cycles for i in simulator.interpreters.values()]
        assert min(clocks) >= 50_000

    def test_barrier_repeated_use(self):
        def worker(ctx, index, barrier, cell):
            for round_ in range(5):
                yield from ctx.barrier(barrier, 3)
                if index == 0:
                    v = yield from ctx.load_u64(cell)
                    yield from ctx.store_u64(cell, v + 1)
                yield from ctx.barrier(barrier + 64, 3)

        def main(ctx):
            barrier = yield from ctx.calloc(128, align=64)
            cell = yield from ctx.calloc(8)
            threads = yield from ctx.spawn_workers(worker, 2, barrier,
                                                   cell)
            yield from worker(ctx, 2, barrier, cell)
            yield from ctx.join_all(threads)
            return (yield from ctx.load_u64(cell))

        assert run(main).main_result == 5

    def test_missing_participant_deadlocks(self):
        def main(ctx):
            barrier = yield from ctx.calloc(8)
            yield from ctx.barrier(barrier, 2)  # nobody else arrives
        with pytest.raises(DeadlockError):
            run(main)


class TestMessaging:
    def test_ping_pong(self):
        def pong(ctx):
            src, value = yield from ctx.recv_u64()
            yield from ctx.send_u64(src, value + 1)

        def main(ctx):
            thread = yield from ctx.spawn(pong)
            yield from ctx.send_u64(thread, 41)
            _, value = yield from ctx.recv_u64(src=thread)
            yield from ctx.join(thread)
            return value
        assert run(main).main_result == 42

    def test_receive_forwards_clock_to_arrival(self):
        """A receiver waiting on a slow sender inherits its timestamp."""
        def sender(ctx, peer):
            yield from ctx.compute(30_000)
            yield from ctx.send_u64(peer, 1)

        def main(ctx):
            thread = yield from ctx.spawn(sender, 0)
            yield from ctx.recv_u64()
            yield from ctx.join(thread)

        simulator = Simulator(tiny_config(4))
        result = simulator.run(main)
        assert result.thread_cycles[0] >= 30_000

    def test_messages_ordered_per_sender(self):
        def sender(ctx, peer):
            for i in range(10):
                yield from ctx.send_u64(peer, i)

        def main(ctx):
            thread = yield from ctx.spawn(sender, 0)
            received = []
            for _ in range(10):
                _, value = yield from ctx.recv_u64(src=thread)
                received.append(value)
            yield from ctx.join(thread)
            return received
        assert run(main).main_result == list(range(10))

    def test_tagged_receive_selects(self):
        def sender(ctx, peer):
            yield from ctx.send_u64(peer, 1, tag=1)
            yield from ctx.send_u64(peer, 2, tag=2)

        def main(ctx):
            thread = yield from ctx.spawn(sender, 0)
            _, second = yield from ctx.recv_u64(tag=2)
            _, first = yield from ctx.recv_u64(tag=1)
            yield from ctx.join(thread)
            return (first, second)
        assert run(main).main_result == (1, 2)

    def test_payload_bytes_roundtrip(self):
        def sender(ctx, peer):
            yield from ctx.send(peer, b"\x00\x01binary\xff", tag=3)

        def main(ctx):
            thread = yield from ctx.spawn(sender, 0)
            src, payload = yield from ctx.recv(tag=3)
            yield from ctx.join(thread)
            return payload
        assert run(main).main_result == b"\x00\x01binary\xff"

    def test_recv_without_sender_deadlocks(self):
        def main(ctx):
            yield from ctx.recv()
        with pytest.raises(DeadlockError):
            run(main)
