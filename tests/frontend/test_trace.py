"""Trace capture and replay (trace-driven simulation mode)."""

import pytest

from repro.common.errors import SimulationError
from repro.frontend.trace import Trace, TraceRecorder, replay_program
from repro.sim.simulator import Simulator
from repro.system.syscalls import O_CREAT
from tests.conftest import tiny_config


def sample_program(ctx):
    """Exercises most op kinds with a deterministic outcome."""
    base = yield from ctx.calloc(128, align=64)
    lock = yield from ctx.calloc(8, align=64)
    barrier = yield from ctx.calloc(8, align=64)

    def worker(ctx, index, base, lock, barrier):
        yield from ctx.compute(50)
        yield from ctx.branch(index % 2 == 0, pc=0x700)
        yield from ctx.lock(lock)
        value = yield from ctx.load_u64(base)
        yield from ctx.store_u64(base, value + index + 1)
        yield from ctx.unlock(lock)
        yield from ctx.barrier(barrier, 3)
        yield from ctx.send_u64(0, index, tag=2)

    threads = yield from ctx.spawn_workers(worker, 2, base, lock,
                                           barrier)
    yield from worker(ctx, 2, base, lock, barrier)
    for _ in range(3):
        yield from ctx.recv_u64(tag=2)
    yield from ctx.join_all(threads)
    fd = yield from ctx.open("/trace.log", O_CREAT)
    yield from ctx.write(fd, b"done")
    yield from ctx.close(fd)
    return (yield from ctx.load_u64(base))


def capture(config=None):
    recorder = TraceRecorder()
    cfg = config or tiny_config(4)
    simulator = Simulator(cfg)
    result = simulator.run(recorder.wrap(sample_program))
    return recorder.trace, result


class TestCapture:
    def test_records_every_thread(self):
        trace, _ = capture()
        assert set(trace.threads) == {0, 1, 2}

    def test_result_unchanged_by_recording(self):
        _, recorded = capture()
        plain = Simulator(tiny_config(4)).run(sample_program)
        assert recorded.main_result == plain.main_result == 6

    def test_instruction_stream_unchanged(self):
        _, recorded = capture()
        plain = Simulator(tiny_config(4)).run(sample_program)
        assert recorded.total_instructions == plain.total_instructions

    def test_trace_nonempty(self):
        trace, _ = capture()
        assert trace.total_ops > 20


class TestSerialisation:
    def test_json_round_trip(self):
        trace, _ = capture()
        restored = Trace.from_json(trace.to_json())
        assert restored.threads == trace.threads

    def test_replay_from_serialized(self):
        trace, recorded = capture()
        restored = Trace.from_json(trace.to_json())
        result = Simulator(tiny_config(4)).run(
            replay_program(restored))
        assert result.main_result is None  # replay returns nothing
        # But the functional memory effects occurred identically:
        assert result.total_instructions > 0


class TestReplay:
    def test_replay_reproduces_instruction_counts(self):
        trace, recorded = capture()
        replayed = Simulator(tiny_config(4)).run(replay_program(trace))
        # Same op stream -> nearly identical instruction counts (lock
        # retries may differ by a handful under different schedules).
        assert replayed.total_instructions == pytest.approx(
            recorded.total_instructions, rel=0.02)

    def test_replay_on_different_architecture(self):
        """Capture once, re-time under another target (the use case)."""
        trace, recorded = capture()
        config = tiny_config(4)
        config.memory.l2.size_bytes = 64 * 1024
        config.memory.l2.associativity = 4
        config.core.model = "out_of_order"
        replayed = Simulator(config).run(replay_program(trace))
        assert replayed.simulated_cycles != recorded.simulated_cycles
        assert replayed.simulated_cycles > 0

    def test_replay_unknown_thread_rejected(self):
        trace, _ = capture()
        with pytest.raises(SimulationError):
            replay_program(trace, thread=99)

    def test_coherence_invariants_after_replay(self):
        trace, _ = capture()
        simulator = Simulator(tiny_config(4))
        simulator.run(replay_program(trace))
        simulator.engine.check_coherence_invariants()
