"""Cluster layout: striping, machine placement, locality."""

import pytest

from repro.common.config import HostConfig
from repro.common.errors import ConfigError
from repro.common.ids import TileId
from repro.host.cluster import ClusterLayout, Locality


def layout(tiles=32, machines=1, cores=8, processes=None):
    host = HostConfig(num_machines=machines, cores_per_machine=cores,
                      num_processes=processes)
    return ClusterLayout(tiles, host)


class TestStriping:
    """Tiles stripe across processes (paper §3.5)."""

    def test_tiles_stripe_round_robin(self):
        lay = layout(tiles=8, machines=2)
        assert lay.process_of_tile(TileId(0)) == 0
        assert lay.process_of_tile(TileId(1)) == 1
        assert lay.process_of_tile(TileId(2)) == 0

    def test_tiles_of_process_matches_striping(self):
        lay = layout(tiles=10, machines=2)
        assert lay.tiles_of_process(lay.process_of_tile(TileId(3))) == \
            [1, 3, 5, 7, 9]

    def test_every_tile_in_exactly_one_process(self):
        lay = layout(tiles=33, machines=4)
        seen = []
        for p in range(lay.num_processes):
            seen.extend(lay.tiles_of_process(p))
        assert sorted(seen) == list(range(33))


class TestPlacement:
    def test_single_machine_all_tiles_local(self):
        lay = layout(tiles=16, machines=1)
        assert all(lay.machine_of_tile(TileId(t)) == 0 for t in range(16))

    def test_machine_balance(self):
        lay = layout(tiles=32, machines=4)
        counts = [len(lay.tiles_on_machine(m)) for m in range(4)]
        assert counts == [8, 8, 8, 8]

    def test_core_within_machine_range(self):
        lay = layout(tiles=32, machines=2)
        for t in range(32):
            core = lay.core_of_tile(TileId(t))
            machine = lay.machine_of_tile(TileId(t))
            assert machine * 8 <= int(core) < (machine + 1) * 8

    def test_cores_shared_fairly(self):
        lay = layout(tiles=32, machines=1)
        loads = {}
        for t in range(32):
            core = int(lay.core_of_tile(TileId(t)))
            loads[core] = loads.get(core, 0) + 1
        assert set(loads.values()) == {4}  # 32 tiles / 8 cores

    def test_more_tiles_than_cores_allowed(self):
        lay = layout(tiles=1024, machines=1, cores=1)
        assert lay.core_of_tile(TileId(1023)) == 0


class TestLocality:
    def test_same_process(self):
        lay = layout(tiles=8, machines=2)
        assert lay.locality(TileId(0), TileId(2)) is Locality.SAME_PROCESS

    def test_cross_machine(self):
        lay = layout(tiles=8, machines=2)
        assert lay.locality(TileId(0), TileId(1)) is Locality.CROSS_MACHINE

    def test_same_machine_different_process(self):
        lay = layout(tiles=8, machines=1, processes=2)
        assert lay.locality(TileId(0), TileId(1)) is Locality.SAME_MACHINE

    def test_locality_symmetric(self):
        lay = layout(tiles=16, machines=2, processes=4)
        for a in range(16):
            for b in range(16):
                assert lay.locality(TileId(a), TileId(b)) is \
                    lay.locality(TileId(b), TileId(a))

    def test_self_locality_is_same_process(self):
        lay = layout(tiles=8, machines=2)
        assert lay.locality(TileId(3), TileId(3)) is Locality.SAME_PROCESS


class TestValidation:
    def test_zero_tiles_rejected(self):
        with pytest.raises(ConfigError):
            layout(tiles=0)

    def test_fewer_processes_than_machines_rejected(self):
        with pytest.raises(ConfigError):
            layout(tiles=8, machines=4, processes=2)
