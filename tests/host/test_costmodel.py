"""Host cost model."""

import random

import pytest

from repro.common.config import HostConfig
from repro.host.cluster import Locality
from repro.host.costmodel import HostCostModel


def model(jitter=0.0, rng=None, **kwargs):
    return HostCostModel(HostConfig(jitter=jitter, **kwargs), rng=rng)


class TestInstructionCosts:
    def test_instrumentation_overhead_applied(self):
        m = model()
        native = m.native_instructions(1000)
        instrumented = m.instructions(1000)
        assert instrumented == pytest.approx(
            native * HostConfig().instrumentation_overhead)

    def test_costs_scale_linearly(self):
        m = model()
        assert m.instructions(200) == pytest.approx(2 * m.instructions(100))

    def test_native_cost_matches_host_clock(self):
        m = model()
        assert m.native_instructions(int(3.16e9)) == pytest.approx(1.0)


class TestMessageCosts:
    def test_locality_ordering(self):
        """intra-process < inter-process < inter-machine (GbE)."""
        m = model()
        intra = m.message(Locality.SAME_PROCESS, 64)
        inter = m.message(Locality.SAME_MACHINE, 64)
        cross = m.message(Locality.CROSS_MACHINE, 64)
        assert intra < inter < cross

    def test_cross_machine_latency_pays_per_byte(self):
        m = model()
        small = m.message_latency(Locality.CROSS_MACHINE, 8)
        large = m.message_latency(Locality.CROSS_MACHINE, 8192)
        assert large > small

    def test_cpu_cost_size_independent(self):
        m = model()
        assert m.message(Locality.CROSS_MACHINE, 8) == \
            pytest.approx(m.message(Locality.CROSS_MACHINE, 8192))

    def test_latency_ordering(self):
        """Local queues have no wire latency; TCP does."""
        m = model()
        assert m.message_latency(Locality.SAME_PROCESS, 64) == 0.0
        assert m.message_latency(Locality.SAME_MACHINE, 64) < \
            m.message_latency(Locality.CROSS_MACHINE, 64)


class TestJitter:
    def test_zero_jitter_deterministic(self):
        m = model(jitter=0.0, rng=random.Random(1))
        assert m.instructions(100) == m.instructions(100)

    def test_jitter_varies_costs(self):
        m = model(jitter=0.05, rng=random.Random(1))
        samples = {m.instructions(100) for _ in range(20)}
        assert len(samples) > 1

    def test_jitter_centred_on_nominal(self):
        m = model(jitter=0.02, rng=random.Random(7))
        nominal = model(jitter=0.0).instructions(100)
        mean = sum(m.instructions(100) for _ in range(500)) / 500
        assert mean == pytest.approx(nominal, rel=0.01)

    def test_no_rng_means_no_jitter(self):
        m = HostCostModel(HostConfig(jitter=0.5), rng=None)
        assert m.instructions(100) == m.instructions(100)


class TestStartup:
    def test_startup_sequential_in_processes(self):
        m = model()
        assert m.process_startup(10) == pytest.approx(
            10 * HostConfig().process_startup_cost)
