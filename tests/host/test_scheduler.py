"""The engine: scheduling, host-time accounting, blocking/waking."""

import pytest

from repro.common.config import HostConfig, SyncConfig
from repro.common.errors import DeadlockError, SimulationError
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.host.cluster import ClusterLayout
from repro.host.costmodel import HostCostModel
from repro.host.scheduler import (
    QuantumResult,
    QuantumStatus,
    Scheduler,
    ThreadState,
    ThreadTask,
)
from repro.sync.lax import LaxModel


class ScriptedTask(ThreadTask):
    """A task that runs a fixed number of quanta, charging fixed cost.

    Optionally blocks at a given quantum until explicitly woken.
    """

    def __init__(self, tile, scheduler_ref, quanta=3, cost=1.0,
                 block_at=None, cycles_per_quantum=100):
        self.tile = TileId(tile)
        self._scheduler_ref = scheduler_ref
        self.remaining = quanta
        self.cost = cost
        self.block_at = block_at
        self.blocked_once = False
        self._cycles = 0
        self.cycles_per_quantum = cycles_per_quantum

    def run(self, budget_instructions, cycle_limit=None):
        scheduler = self._scheduler_ref[0]
        scheduler.charge(self.cost)
        if self.block_at is not None and not self.blocked_once and \
                self.remaining == self.block_at:
            self.blocked_once = True
            return QuantumResult(QuantumStatus.BLOCKED, 0)
        self._cycles += self.cycles_per_quantum
        self.remaining -= 1
        if self.remaining <= 0:
            return QuantumResult(QuantumStatus.DONE, budget_instructions)
        return QuantumResult(QuantumStatus.RAN, budget_instructions)

    @property
    def cycles(self):
        return self._cycles


def make_scheduler(tiles=4, machines=1, cores=2):
    host = HostConfig(num_machines=machines, cores_per_machine=cores,
                      jitter=0.0)
    layout = ClusterLayout(tiles, host)
    cost = HostCostModel(host)
    sync = LaxModel(SyncConfig(), StatGroup("sync"))
    scheduler = Scheduler(layout, cost, sync, StatGroup("sched"),
                          quantum_instructions=100)
    return scheduler


class TestBasicRuns:
    def test_single_thread_runs_to_completion(self):
        s = make_scheduler()
        ref = [s]
        s.add_thread(ScriptedTask(0, ref, quanta=5))
        report = s.run()
        assert report.total_quanta == 5
        assert s.threads[TileId(0)].state is ThreadState.DONE

    def test_wall_clock_is_makespan(self):
        """Two threads on different cores run in parallel."""
        s = make_scheduler(tiles=2, cores=2)
        ref = [s]
        s.add_thread(ScriptedTask(0, ref, quanta=4, cost=1.0))
        s.add_thread(ScriptedTask(1, ref, quanta=4, cost=1.0))
        report = s.run()
        assert report.wall_clock_seconds == pytest.approx(4.0)
        assert report.busy_seconds == pytest.approx(8.0)

    def test_one_core_serializes(self):
        s = make_scheduler(tiles=2, cores=1)
        ref = [s]
        s.add_thread(ScriptedTask(0, ref, quanta=4, cost=1.0))
        s.add_thread(ScriptedTask(1, ref, quanta=4, cost=1.0))
        report = s.run()
        assert report.wall_clock_seconds == pytest.approx(8.0)

    def test_instructions_accumulated(self):
        s = make_scheduler()
        ref = [s]
        s.add_thread(ScriptedTask(0, ref, quanta=3))
        report = s.run()
        assert report.total_instructions == 300

    def test_least_loaded_core_advances_first(self):
        """Cores interleave: total busy spreads across both cores."""
        s = make_scheduler(tiles=4, cores=2)
        ref = [s]
        for t in range(4):
            s.add_thread(ScriptedTask(t, ref, quanta=2, cost=1.0))
        report = s.run()
        assert report.core_busy_seconds[0] == pytest.approx(4.0)
        assert report.core_busy_seconds[1] == pytest.approx(4.0)


class TestBlockingAndWaking:
    def test_blocked_thread_deadlocks_without_wake(self):
        s = make_scheduler(tiles=1)
        ref = [s]
        s.add_thread(ScriptedTask(0, ref, quanta=3, block_at=2))
        with pytest.raises(DeadlockError):
            s.run()

    def test_wake_resumes_blocked_thread(self):
        s = make_scheduler(tiles=2, cores=2)
        ref = [s]
        blocker = ScriptedTask(0, ref, quanta=3, block_at=2)

        class Waker(ScriptedTask):
            def run(self, budget, cycle_limit=None):
                result = super().run(budget, cycle_limit)
                scheduler = self._scheduler_ref[0]
                blocked = scheduler.threads.get(TileId(0))
                if blocked and blocked.state is ThreadState.BLOCKED:
                    scheduler.wake(TileId(0))
                return result

        s.add_thread(blocker)
        s.add_thread(Waker(1, ref, quanta=5))
        report = s.run()
        assert s.threads[TileId(0)].state is ThreadState.DONE
        assert report.total_quanta >= 8

    def test_wake_sets_ready_time_to_waker_now(self):
        s = make_scheduler(tiles=2, cores=2)
        ref = [s]
        s.add_thread(ScriptedTask(0, ref, quanta=2, block_at=2))
        # Run until the thread blocks.
        with pytest.raises(DeadlockError):
            s.run()
        s.core_time[1] = 5.0  # pretend the waker is far ahead
        s.wake(TileId(0))
        thread = s.threads[TileId(0)]
        assert thread.state is ThreadState.RUNNABLE
        assert thread.ready_host_time >= 5.0

    def test_wake_unknown_tile_raises(self):
        s = make_scheduler()
        with pytest.raises(SimulationError):
            s.wake(TileId(3))


class TestSleep:
    def test_sleeping_thread_fast_forwards_core(self):
        s = make_scheduler(tiles=1)
        ref = [s]
        task = ScriptedTask(0, ref, quanta=2, cost=1.0)
        thread = s.add_thread(task)
        s.sleep_thread(thread, 10.0)
        report = s.run()
        # The core idled 10 s, then ran 2 quanta of 1 s.
        assert report.wall_clock_seconds == pytest.approx(12.0)

    def test_sleep_does_not_count_as_busy(self):
        s = make_scheduler(tiles=1)
        ref = [s]
        thread = s.add_thread(ScriptedTask(0, ref, quanta=1, cost=1.0))
        s.sleep_thread(thread, 5.0)
        report = s.run()
        assert report.busy_seconds == pytest.approx(1.0)


class TestBlocking:
    def test_blocking_defers_thread_not_core(self):
        """Wire latency delays the thread; the core stays available."""
        s = make_scheduler(tiles=2, cores=1)
        ref = [s]

        class BlockingTask(ScriptedTask):
            def run(self, budget, cycle_limit=None):
                result = super().run(budget, cycle_limit)
                self._scheduler_ref[0].charge_blocking(10.0)
                return result

        a = BlockingTask(0, ref, quanta=2, cost=1.0)
        b = ScriptedTask(1, ref, quanta=2, cost=1.0)
        s.add_thread(a)
        s.add_thread(b)
        report = s.run()
        # Core busy is only the CPU charges; wall includes a's waits
        # overlapped with b's execution.
        assert report.busy_seconds == pytest.approx(4.0)
        assert report.wall_clock_seconds < 4.0 + 2 * 10.0

    def test_blocking_alone_stretches_wall(self):
        s = make_scheduler(tiles=1, cores=1)
        ref = [s]

        class BlockingTask(ScriptedTask):
            def run(self, budget, cycle_limit=None):
                result = super().run(budget, cycle_limit)
                self._scheduler_ref[0].charge_blocking(5.0)
                return result

        s.add_thread(BlockingTask(0, ref, quanta=2, cost=1.0))
        report = s.run()
        # Two quanta of 1s plus one inter-quantum blocking gap of 5s
        # (the final quantum's blocking ends the run).
        assert report.wall_clock_seconds >= 7.0
        assert report.busy_seconds == pytest.approx(2.0)

    def test_negative_blocking_rejected(self):
        s = make_scheduler()
        with pytest.raises(SimulationError):
            s.charge_blocking(-1.0)


class TestCharging:
    def test_charge_outside_quantum_goes_to_core0(self):
        s = make_scheduler()
        s.charge(2.5)
        assert s.core_time[0] == pytest.approx(2.5)

    def test_negative_charge_rejected(self):
        s = make_scheduler()
        with pytest.raises(SimulationError):
            s.charge(-1.0)

    def test_duplicate_live_thread_rejected(self):
        s = make_scheduler()
        ref = [s]
        s.add_thread(ScriptedTask(0, ref))
        with pytest.raises(SimulationError):
            s.add_thread(ScriptedTask(0, ref))


class TestMaxTurns:
    def test_livelock_guard(self):
        s = make_scheduler()
        ref = [s]
        s.add_thread(ScriptedTask(0, ref, quanta=10**9))
        with pytest.raises(SimulationError):
            s.run(max_turns=10)
