"""Scheduler edge cases: dispatch policy, diagnostics, reports."""

import pytest

from repro.common.config import HostConfig, SyncConfig
from repro.common.errors import DeadlockError
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.host.cluster import ClusterLayout
from repro.host.costmodel import HostCostModel
from repro.host.scheduler import (
    Scheduler,
    ThreadState,
)
from repro.sync.lax import LaxModel
from tests.host.test_scheduler import ScriptedTask, make_scheduler


class TestDispatchPolicy:
    def test_ready_time_respected(self):
        """A thread with a future ready time is not run early."""
        s = make_scheduler(tiles=1)
        ref = [s]
        s.add_thread(ScriptedTask(0, ref, quanta=1, cost=1.0),
                     start_host_time=7.5)
        report = s.run()
        assert report.wall_clock_seconds >= 8.5

    def test_round_robin_within_core(self):
        """Threads on one core take turns quantum by quantum."""
        s = make_scheduler(tiles=3, cores=1)
        ref = [s]
        order = []

        class Tracker(ScriptedTask):
            def run(self, budget, cycle_limit=None):
                order.append(int(self.tile))
                return super().run(budget, cycle_limit)

        for t in range(3):
            s.add_thread(Tracker(t, ref, quanta=3))
        s.run()
        # Every window of 3 turns touches all 3 threads.
        for start in range(0, 9, 3):
            assert set(order[start:start + 3]) == {0, 1, 2}

    def test_idle_core_fast_forwards_to_sleeper(self):
        s = make_scheduler(tiles=2, cores=1)
        ref = [s]
        sleeper = s.add_thread(ScriptedTask(0, ref, quanta=1, cost=1.0))
        s.sleep_thread(sleeper, 100.0)
        s.add_thread(ScriptedTask(1, ref, quanta=2, cost=1.0))
        report = s.run()
        # Runnable work proceeds first; the sleeper finishes at ~101.
        assert report.wall_clock_seconds >= 100.0
        assert report.core_busy_seconds[0] == pytest.approx(3.0)


class TestDiagnostics:
    def test_deadlock_message_names_states(self):
        s = make_scheduler(tiles=2, cores=2)
        ref = [s]
        s.add_thread(ScriptedTask(0, ref, quanta=3, block_at=3))
        s.add_thread(ScriptedTask(1, ref, quanta=3, block_at=3))
        with pytest.raises(DeadlockError) as err:
            s.run()
        assert "blocked" in str(err.value)

    def test_quanta_counted_per_thread(self):
        s = make_scheduler(tiles=1)
        ref = [s]
        thread = s.add_thread(ScriptedTask(0, ref, quanta=4))
        s.run()
        assert thread.quanta == 4

    def test_report_total_simulated_cycles(self):
        s = make_scheduler(tiles=2, cores=2)
        ref = [s]
        s.add_thread(ScriptedTask(0, ref, quanta=2,
                                  cycles_per_quantum=100))
        s.add_thread(ScriptedTask(1, ref, quanta=3,
                                  cycles_per_quantum=100))
        report = s.run()
        assert report.total_simulated_cycles == 500


class TestQuantumRandomization:
    def test_rng_varies_budgets(self):
        import random
        budgets = []

        class BudgetSpy(ScriptedTask):
            def run(self, budget, cycle_limit=None):
                budgets.append(budget)
                return super().run(budget, cycle_limit)

        host = HostConfig(num_machines=1, cores_per_machine=1,
                          jitter=0.0)
        layout = ClusterLayout(1, host)
        scheduler = Scheduler(layout, HostCostModel(host),
                              LaxModel(SyncConfig(), StatGroup("s")),
                              StatGroup("sched"),
                              quantum_instructions=1000,
                              rng=random.Random(3))
        ref = [scheduler]
        scheduler.add_thread(BudgetSpy(0, ref, quanta=20))
        scheduler.run()
        assert len(set(budgets)) > 3
        assert all(500 <= b < 1500 for b in budgets)

    def test_no_rng_fixed_budgets(self):
        budgets = []

        class BudgetSpy(ScriptedTask):
            def run(self, budget, cycle_limit=None):
                budgets.append(budget)
                return super().run(budget, cycle_limit)

        s = make_scheduler(tiles=1)
        ref = [s]
        s.add_thread(BudgetSpy(0, ref, quanta=5))
        s.run()
        assert set(budgets) == {100}


class TestWakeRaces:
    def test_wake_before_block_recorded(self):
        """A wake that lands while the thread is RUNNING is dropped by
        the scheduler (the blocking subsystem re-checks on retry)."""
        s = make_scheduler(tiles=1)
        ref = [s]
        thread = s.add_thread(ScriptedTask(0, ref, quanta=2))
        thread.state = ThreadState.RUNNING
        s.wake(TileId(0))
        assert thread.state is ThreadState.RUNNING
        thread.state = ThreadState.RUNNABLE
        s.run()

    def test_wake_idempotent(self):
        s = make_scheduler(tiles=1)
        ref = [s]
        thread = s.add_thread(ScriptedTask(0, ref, quanta=1))
        thread.state = ThreadState.BLOCKED
        s.wake(TileId(0))
        s.wake(TileId(0))
        assert thread.state is ThreadState.RUNNABLE
        s.run()
