"""Functional equivalence across modeling configurations.

The paper's central functional claim: the same unmodified program runs
correctly whatever the host distribution, synchronization model, or
target architecture parameters — those choices affect *timing*, never
*results*.  These tests run one program with a deterministic functional
outcome under many configurations and require identical answers.
"""

import pytest

from repro.common.config import SimulationConfig
from repro.sim.simulator import Simulator


def deterministic_program(ctx):
    """Locks, barriers, messages and shared memory with a fixed answer."""
    counter = yield from ctx.calloc(8)
    lock = yield from ctx.calloc(8, align=64)
    barrier = yield from ctx.calloc(8, align=64)
    data = yield from ctx.calloc(256, align=64)

    def worker(ctx, index, counter, lock, barrier, data):
        for i in range(8):
            yield from ctx.lock(lock)
            value = yield from ctx.load_u64(counter)
            yield from ctx.store_u64(counter, value + index + 1)
            yield from ctx.unlock(lock)
            yield from ctx.store_u64(data + (index * 8 + i % 4) * 8,
                                     index * 100 + i)
        yield from ctx.barrier(barrier, 4)
        yield from ctx.send_u64(0, index, tag=5)

    threads = yield from ctx.spawn_workers(worker, 3, counter, lock,
                                           barrier, data)
    # The main thread participates as worker 3 (spawned workers got
    # indices 0-2); it also sends, to itself, and then drains all four
    # tagged messages, so every output is deterministic.
    yield from worker(ctx, 3, counter, lock, barrier, data)
    received = 0
    for _ in range(4):
        _, value = yield from ctx.recv_u64(tag=5)
        received += value
    yield from ctx.join_all(threads)
    total = yield from ctx.load_u64(counter)
    sample = yield from ctx.load_u64(data + 8 * 8)
    return (total, received, sample)


EXPECTED = (8 * (1 + 2 + 3 + 4), 0 + 1 + 2 + 3, 100 + 4)


def run_with(mutate):
    config = SimulationConfig(num_tiles=4)
    config.host.quantum_instructions = 300
    mutate(config)
    config.validate()
    simulator = Simulator(config)
    result = simulator.run(deterministic_program)
    simulator.engine.check_coherence_invariants()
    return result


class TestHostLayoutInvariance:
    @pytest.mark.parametrize("machines,cores", [(1, 1), (1, 4), (2, 2),
                                                (4, 1), (2, 8)])
    def test_result_independent_of_cluster_shape(self, machines, cores):
        def mutate(config):
            config.host.num_machines = machines
            config.host.cores_per_machine = cores
        assert run_with(mutate).main_result == EXPECTED

    def test_result_independent_of_process_count(self):
        def mutate(config):
            config.host.num_processes = 4
        assert run_with(mutate).main_result == EXPECTED


class TestSyncModelInvariance:
    @pytest.mark.parametrize("model", ["lax", "lax_barrier", "lax_p2p"])
    def test_result_independent_of_sync_model(self, model):
        # Runs under the runtime sanitizers: the sync models are where
        # clock-monotonicity and barrier-membership bugs would live,
        # and sanitizers are observational so the result is unchanged.
        def mutate(config):
            config.sync.model = model
            config.sync.barrier_interval = 500
            config.sync.p2p_slack = 2000
            config.sync.p2p_interval = 500
            config.check.sanitize = True
        assert run_with(mutate).main_result == EXPECTED


class TestMemoryModelInvariance:
    @pytest.mark.parametrize("directory", ["full_map", "limited",
                                           "limitless"])
    def test_result_independent_of_directory(self, directory):
        def mutate(config):
            config.memory.directory_type = directory
            config.memory.directory_max_sharers = 2
        assert run_with(mutate).main_result == EXPECTED

    @pytest.mark.parametrize("line", [16, 32, 64, 128])
    def test_result_independent_of_line_size(self, line):
        def mutate(config):
            config.memory.l1i.line_bytes = line
            config.memory.l1d.line_bytes = line
            config.memory.l2.line_bytes = line
        assert run_with(mutate).main_result == EXPECTED

    def test_result_independent_of_forwarding(self):
        def mutate(config):
            config.memory.forward_shared_reads = False
        assert run_with(mutate).main_result == EXPECTED

    def test_result_with_tiny_cache(self):
        def mutate(config):
            config.memory.l2.size_bytes = 4096
            config.memory.l2.associativity = 2
        assert run_with(mutate).main_result == EXPECTED

    def test_result_without_l1(self):
        def mutate(config):
            config.memory.l1i.enabled = False
            config.memory.l1d.enabled = False
        assert run_with(mutate).main_result == EXPECTED


class TestNetworkModelInvariance:
    @pytest.mark.parametrize("model", ["magic", "mesh",
                                       "mesh_contention"])
    def test_result_independent_of_network(self, model):
        def mutate(config):
            config.network.memory_model = model
            config.network.user_model = model
        assert run_with(mutate).main_result == EXPECTED


class TestInstructionInvariance:
    def test_instruction_counts_config_independent(self):
        """Timing configs cannot change the dynamic instruction path.

        Uses a lock-free program: contended locks legitimately retry a
        schedule-dependent number of times, so only programs without
        contended acquisition have schedule-invariant instruction
        counts.
        """
        def lockfree(ctx):
            data = yield from ctx.calloc(512, align=64)

            def worker(ctx, index, data):
                for i in range(20):
                    value = yield from ctx.load_u64(data + index * 64)
                    yield from ctx.compute(30)
                    yield from ctx.store_u64(data + index * 64,
                                             value + i)

            threads = yield from ctx.spawn_workers(worker, 3, data)
            yield from worker(ctx, 3, data)
            yield from ctx.join_all(threads)

        counts = set()
        for mutate in (
            lambda c: None,
            lambda c: setattr(c.host, "num_machines", 4),
            lambda c: setattr(c.memory, "directory_type", "limited"),
        ):
            config = SimulationConfig(num_tiles=4)
            config.host.quantum_instructions = 300
            mutate(config)
            result = Simulator(config).run(lockfree)
            counts.add(result.total_instructions)
        assert len(counts) == 1
