"""The ISSUE's multi-host acceptance run, at scale.

A 1024-tile simulation spanning two TCP-connected workers, with a live
shard migration mid-run, must finish with every simulated metric
byte-identical to the undisturbed in-process run and to the original
pipe transport.  This is the paper's distribution claim end to end:
host topology — including a host topology that *changes while the run
is in flight* — is invisible to the simulated machine.
"""

from __future__ import annotations

import pytest

from repro.common.config import SimulationConfig
from repro.distrib.wire import WorkloadRef
from repro.sim.runner import create_simulator
from repro.sim.simulator import Simulator
from repro.telemetry.events import EventCategory

TILES = 1024
REF = WorkloadRef("matrix_multiply", nthreads=8, scale=0.05)


def _config() -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=TILES, seed=7)
    cfg.host.num_machines = 2
    cfg.host.cores_per_machine = 2
    cfg.host.quantum_instructions = 200
    return cfg


def _assert_same_metrics(result, reference) -> None:
    assert result.simulated_cycles == reference.simulated_cycles
    assert result.thread_cycles == reference.thread_cycles
    assert result.thread_start_cycles == reference.thread_start_cycles
    assert result.thread_instructions == reference.thread_instructions
    assert result.counters == reference.counters
    assert result.wall_clock_seconds == reference.wall_clock_seconds
    assert result.core_busy_seconds == reference.core_busy_seconds
    assert result.main_result == reference.main_result


@pytest.mark.slow
def test_1024_tiles_over_tcp_with_live_migration_matches_inproc():
    inproc_cfg = _config()
    inproc_cfg.validate()
    inproc = Simulator(inproc_cfg).run(REF)

    pipe_cfg = _config()
    pipe_cfg.distrib.backend = "mp"
    pipe_cfg.distrib.transport = "pipe"
    pipe_cfg.validate()
    pipes = create_simulator(pipe_cfg).run(REF)
    _assert_same_metrics(pipes, inproc)

    tcp_cfg = _config()
    tcp_cfg.distrib.backend = "mp"
    tcp_cfg.distrib.transport = "tcp"
    tcp_cfg.distrib.drain_turn = 3  # force a live migration mid-run
    tcp_cfg.telemetry.enabled = True
    tcp_cfg.telemetry.events = ["net"]
    tcp_cfg.validate()
    sim = create_simulator(tcp_cfg)
    tcp = sim.run(REF)
    _assert_same_metrics(tcp, inproc)

    events = [e for e in sim.telemetry.events
              if e.category == EventCategory.NET]
    migrated = [e for e in events if e.name == "worker.migrated"]
    assert migrated, "no live migration happened during the run"
    assert sum(e.args["tiles"] for e in migrated) >= TILES // 2
    assert any(e.name == "worker.left" for e in events)
