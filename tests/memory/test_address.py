"""Target address space: segments, homing, line arithmetic."""

import pytest

from repro.common.errors import TargetFault
from repro.common.ids import TileId
from repro.memory.address import AddressSpace, Segment


@pytest.fixture
def space():
    return AddressSpace(num_tiles=8, line_bytes=64)


class TestSegments:
    def test_code_segment(self, space):
        assert space.segment_of(0x100) is Segment.CODE

    def test_heap_segment(self, space):
        assert space.segment_of(space.HEAP_BASE) is Segment.HEAP

    def test_stack_segment(self, space):
        assert space.segment_of(space.STACK_BASE + 100) is Segment.STACK

    def test_kernel_segment(self, space):
        assert space.segment_of(space.KERNEL_BASE) is Segment.KERNEL

    def test_segments_cover_space_without_overlap(self, space):
        previous_limit = 0
        for srange in space.segments:
            assert srange.base == previous_limit
            previous_limit = srange.limit
        assert previous_limit == space.LIMIT

    def test_address_outside_space_faults(self, space):
        with pytest.raises(TargetFault):
            space.segment_of(space.LIMIT)
        with pytest.raises(TargetFault):
            space.segment_of(-1)


class TestAccessChecks:
    def test_valid_access_passes(self, space):
        space.check_access(space.HEAP_BASE, 8)

    def test_kernel_access_faults(self, space):
        with pytest.raises(TargetFault):
            space.check_access(space.KERNEL_BASE, 8)

    def test_access_straddling_into_kernel_faults(self, space):
        with pytest.raises(TargetFault):
            space.check_access(space.KERNEL_BASE - 4, 8)

    def test_zero_size_faults(self, space):
        with pytest.raises(TargetFault):
            space.check_access(space.HEAP_BASE, 0)


class TestLines:
    def test_line_of_aligns_down(self, space):
        assert space.line_of(0x1007) == 0x1000 + 0  # 64-aligned
        assert space.line_of(0x1049) == 0x1040

    def test_line_index(self, space):
        assert space.line_index(0) == 0
        assert space.line_index(64) == 1
        assert space.line_index(63) == 0


class TestHoming:
    def test_lines_interleave_round_robin(self, space):
        """The directory is uniformly distributed across the tiles."""
        homes = [int(space.home_tile(line * 64)) for line in range(16)]
        assert homes == [line % 8 for line in range(16)]

    def test_same_line_same_home(self, space):
        assert space.home_tile(0x1000) == space.home_tile(0x1030)

    def test_homes_balanced(self, space):
        counts = {}
        for line in range(800):
            home = int(space.home_tile(line * 64))
            counts[home] = counts.get(home, 0) + 1
        assert set(counts.values()) == {100}


class TestStacks:
    def test_stacks_disjoint(self, space):
        ranges = [space.stack_range(TileId(t)) for t in range(8)]
        for i, a in enumerate(ranges):
            for b in ranges[i + 1:]:
                assert a.limit <= b.base or b.limit <= a.base

    def test_stacks_inside_stack_segment(self, space):
        for t in range(8):
            srange = space.stack_range(TileId(t))
            assert space.segment_of(srange.base) is Segment.STACK
            assert space.segment_of(srange.limit - 1) is Segment.STACK

    def test_too_many_tiles_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace(num_tiles=100_000, line_bytes=64)
