"""Dynamic memory manager: brk, mmap, malloc/free."""

import pytest

from repro.common.errors import TargetFault
from repro.common.ids import TileId
from repro.memory.address import AddressSpace
from repro.memory.allocator import DynamicMemoryManager


@pytest.fixture
def manager():
    return DynamicMemoryManager(AddressSpace(8, 64))


class TestBrk:
    def test_query_returns_current_break(self, manager):
        assert manager.brk(0) == manager.space.HEAP_BASE

    def test_move_break(self, manager):
        target = manager.space.HEAP_BASE + 4096
        assert manager.brk(target) == target
        assert manager.brk(0) == target

    def test_break_outside_heap_faults(self, manager):
        with pytest.raises(TargetFault):
            manager.brk(manager.space.DYNAMIC_BASE)


class TestMmap:
    def test_mmap_returns_dynamic_address(self, manager):
        base = manager.mmap(8192)
        assert manager.space.DYNAMIC_BASE <= base < \
            manager.space.STACK_BASE

    def test_mmap_regions_disjoint(self, manager):
        a = manager.mmap(4096)
        b = manager.mmap(4096)
        assert b >= a + 4096

    def test_munmap_releases(self, manager):
        base = manager.mmap(4096)
        manager.munmap(base, 4096)
        with pytest.raises(TargetFault):
            manager.munmap(base, 4096)

    def test_munmap_unknown_faults(self, manager):
        with pytest.raises(TargetFault):
            manager.munmap(0x4000_0000, 4096)

    def test_mmap_zero_faults(self, manager):
        with pytest.raises(TargetFault):
            manager.mmap(0)


class TestMalloc:
    def test_blocks_disjoint(self, manager):
        blocks = [(manager.malloc(100), 100) for _ in range(10)]
        for i, (a, asize) in enumerate(blocks):
            for b, bsize in blocks[i + 1:]:
                assert a + asize <= b or b + bsize <= a

    def test_alignment_honoured(self, manager):
        manager.malloc(24)  # misalign the break
        address = manager.malloc(64, align=64)
        assert address % 64 == 0

    def test_free_allows_reuse(self, manager):
        a = manager.malloc(64, align=64)
        manager.free(a)
        b = manager.malloc(64, align=64)
        assert b == a

    def test_double_free_faults(self, manager):
        a = manager.malloc(64)
        manager.free(a)
        with pytest.raises(TargetFault):
            manager.free(a)

    def test_free_unknown_faults(self, manager):
        with pytest.raises(TargetFault):
            manager.free(0x1234_5678)

    def test_zero_size_faults(self, manager):
        with pytest.raises(TargetFault):
            manager.malloc(0)

    def test_bad_alignment_faults(self, manager):
        with pytest.raises(TargetFault):
            manager.malloc(64, align=24)

    def test_coalescing_reassembles_holes(self, manager):
        blocks = [manager.malloc(64, align=64) for _ in range(4)]
        for b in blocks:
            manager.free(b)
        # After coalescing, one big block fits where four small ones were.
        big = manager.malloc(256, align=64)
        assert big == blocks[0]

    def test_accounting(self, manager):
        a = manager.malloc(100)
        assert manager.live_allocations == 1
        assert manager.heap_bytes_in_use >= 100
        manager.free(a)
        assert manager.live_allocations == 0
        assert manager.heap_bytes_in_use == 0


class TestStacks:
    def test_stack_top_in_own_range(self, manager):
        for t in range(8):
            top = manager.stack_top(TileId(t))
            srange = manager.space.stack_range(TileId(t))
            assert srange.base < top < srange.limit
