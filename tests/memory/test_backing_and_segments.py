"""Backing store behaviour and cross-segment simulations."""

import pytest

from repro.common.config import SimulationConfig
from repro.memory.backing import BackingStore
from repro.sim.simulator import Simulator
from tests.conftest import MemoryRig, tiny_config


class TestBackingStore:
    def test_unwritten_lines_zero(self):
        store = BackingStore(64)
        assert store.read_line(0x1000) == bytearray(64)

    def test_write_then_read(self):
        store = BackingStore(64)
        store.write_line(0x1000, b"\x42" * 64)
        assert bytes(store.read_line(0x1000)) == b"\x42" * 64

    def test_reads_are_copies(self):
        store = BackingStore(64)
        store.write_line(0, b"\x01" * 64)
        copy = store.read_line(0)
        copy[0] = 0xFF
        assert store.read_line(0)[0] == 0x01

    def test_wrong_size_writeback_rejected(self):
        store = BackingStore(64)
        with pytest.raises(ValueError):
            store.write_line(0, b"\x00" * 32)

    def test_resident_count(self):
        store = BackingStore(64)
        store.write_line(0, bytes(64))
        store.write_line(64, bytes(64))
        store.write_line(0, bytes(64))  # overwrite, not new
        assert store.resident_lines == 2

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            BackingStore(48)


class TestCrossSegmentPrograms:
    def test_mmap_memory_is_cached_and_coherent(self):
        def main(ctx):
            region = yield from ctx.syscall("mmap", 8192)

            def child(ctx, region):
                value = yield from ctx.load_u64(region)
                yield from ctx.store_u64(region + 8, value * 2)

            yield from ctx.store_u64(region, 21)
            thread = yield from ctx.spawn(child, region)
            yield from ctx.join(thread)
            result = yield from ctx.load_u64(region + 8)
            yield from ctx.syscall("munmap", region, 8192)
            return result

        assert Simulator(tiny_config(2)).run(main).main_result == 42

    def test_static_segment_access(self):
        rig = MemoryRig(SimulationConfig(num_tiles=2))
        static = rig.space.STATIC_BASE + 0x100
        rig.store_int(0, static, 17)
        value, _ = rig.load_int(1, static)
        assert value == 17

    def test_stack_segment_access(self):
        rig = MemoryRig(SimulationConfig(num_tiles=2))
        from repro.common.ids import TileId
        from repro.memory.allocator import DynamicMemoryManager

        allocator = DynamicMemoryManager(rig.space)
        top = allocator.stack_top(TileId(1))
        rig.store_int(1, top - 64, 99)
        value, _ = rig.load_int(0, top - 64)
        assert value == 99

    def test_heap_and_mmap_lines_home_across_tiles(self):
        """Homing interleaves across all tiles for every segment."""
        rig = MemoryRig(SimulationConfig(num_tiles=4))
        homes = set()
        for segment_base in (rig.space.HEAP_BASE, rig.space.DYNAMIC_BASE,
                             rig.space.STACK_BASE):
            for i in range(8):
                homes.add(int(rig.space.home_tile(segment_base + i * 64)))
        assert homes == {0, 1, 2, 3}
