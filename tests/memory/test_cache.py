"""Set-associative cache with LRU replacement."""

import pytest

from repro.common.config import CacheConfig
from repro.common.stats import StatGroup
from repro.memory.cache import Cache, LineState


def make_cache(size=1024, line=64, ways=2):
    config = CacheConfig(size_bytes=size, line_bytes=line,
                         associativity=ways)
    return Cache("test", config, StatGroup("c"))


def addresses_in_same_set(cache, count):
    """Generate distinct line addresses that map to set 0."""
    step = cache.num_sets * cache.line_bytes
    return [i * step for i in range(count)]


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(0x0) is None
        cache.insert(0x0, LineState.SHARED)
        assert cache.lookup(0x0) is not None

    def test_hit_statistics(self):
        cache = make_cache()
        cache.lookup(0x0)
        cache.insert(0x0, LineState.SHARED)
        cache.lookup(0x0)
        assert cache.stats.counter("lookups").value == 2
        assert cache.stats.counter("hits").value == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_uncounted_probe(self):
        cache = make_cache()
        cache.lookup(0x0, count=False)
        assert cache.stats.counter("lookups").value == 0

    def test_insert_existing_updates_in_place(self):
        cache = make_cache()
        cache.insert(0x0, LineState.SHARED)
        victim = cache.insert(0x0, LineState.MODIFIED)
        assert victim is None
        assert cache.peek(0x0).state is LineState.MODIFIED
        assert cache.resident_lines == 1

    def test_data_stored(self):
        cache = make_cache()
        cache.insert(0x0, LineState.SHARED, bytearray(b"x" * 64))
        assert bytes(cache.peek(0x0).data) == b"x" * 64


class TestLru:
    def test_lru_victim_is_oldest(self):
        cache = make_cache(ways=2)
        a, b, c = addresses_in_same_set(cache, 3)
        cache.insert(a, LineState.SHARED)
        cache.insert(b, LineState.SHARED)
        victim = cache.insert(c, LineState.SHARED)
        assert victim.address == a

    def test_touch_refreshes_lru(self):
        cache = make_cache(ways=2)
        a, b, c = addresses_in_same_set(cache, 3)
        cache.insert(a, LineState.SHARED)
        cache.insert(b, LineState.SHARED)
        cache.lookup(a)  # refresh a; b becomes LRU
        victim = cache.insert(c, LineState.SHARED)
        assert victim.address == b

    def test_peek_does_not_refresh(self):
        cache = make_cache(ways=2)
        a, b, c = addresses_in_same_set(cache, 3)
        cache.insert(a, LineState.SHARED)
        cache.insert(b, LineState.SHARED)
        cache.peek(a)  # must NOT refresh
        victim = cache.insert(c, LineState.SHARED)
        assert victim.address == a

    def test_set_isolation(self):
        """Filling one set never evicts from another."""
        cache = make_cache(ways=2)
        other_set = cache.line_bytes  # maps to set 1
        cache.insert(other_set, LineState.SHARED)
        for address in addresses_in_same_set(cache, 5):
            cache.insert(address, LineState.SHARED)
        assert cache.peek(other_set) is not None

    def test_capacity_bound(self):
        cache = make_cache(size=1024, line=64, ways=2)  # 16 lines
        for i in range(64):
            cache.insert(i * 64, LineState.SHARED)
        assert cache.resident_lines <= 16


class TestRemove:
    def test_remove_returns_line(self):
        cache = make_cache()
        cache.insert(0x0, LineState.MODIFIED)
        line = cache.remove(0x0)
        assert line.state is LineState.MODIFIED
        assert cache.peek(0x0) is None

    def test_remove_absent_returns_none(self):
        assert make_cache().remove(0x0) is None

    def test_invalidation_counter(self):
        cache = make_cache()
        cache.insert(0x0, LineState.SHARED)
        cache.remove(0x0)
        assert cache.stats.counter("invalidations").value == 1


class TestDirtyness:
    def test_modified_is_dirty(self):
        cache = make_cache()
        cache.insert(0x0, LineState.MODIFIED)
        assert cache.peek(0x0).dirty

    def test_shared_is_clean(self):
        cache = make_cache()
        cache.insert(0x0, LineState.SHARED)
        assert not cache.peek(0x0).dirty


class TestIteration:
    def test_iterates_all_residents(self):
        cache = make_cache()
        for i in range(5):
            cache.insert(i * 64, LineState.SHARED)
        assert {line.address for line in cache} == \
            {i * 64 for i in range(5)}
