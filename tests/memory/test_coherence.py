"""The directory MSI protocol: functional + modelled behaviour."""

import pytest

from repro.common.config import SimulationConfig
from repro.common.units import KB
from repro.memory.cache import LineState
from repro.memory.directory import DirState
from tests.conftest import MemoryRig


HEAP = 0x1000_0000  # AddressSpace.HEAP_BASE


@pytest.fixture
def rig():
    return MemoryRig(SimulationConfig(num_tiles=4))


class TestFunctionalCorrectness:
    def test_read_after_write_same_tile(self, rig):
        rig.store_int(0, HEAP, 42)
        value, _ = rig.load_int(0, HEAP)
        assert value == 42

    def test_read_after_write_cross_tile(self, rig):
        rig.store_int(0, HEAP, 7)
        value, _ = rig.load_int(3, HEAP)
        assert value == 7

    def test_write_propagates_through_chain(self, rig):
        rig.store_int(0, HEAP, 1)
        rig.store_int(1, HEAP, 2)
        rig.store_int(2, HEAP, 3)
        value, _ = rig.load_int(3, HEAP)
        assert value == 3

    def test_unwritten_memory_reads_zero(self, rig):
        value, _ = rig.load_int(2, HEAP + 0x8000)
        assert value == 0

    def test_partial_line_writes_merge(self, rig):
        rig.store(0, HEAP, b"\x11" * 8)
        rig.store(1, HEAP + 8, b"\x22" * 8)
        data, _ = rig.load(2, HEAP, 16)
        assert data == b"\x11" * 8 + b"\x22" * 8

    def test_cross_line_access(self, rig):
        rig.store(0, HEAP + 60, b"ABCDEFGH")  # straddles two lines
        data, _ = rig.load(1, HEAP + 60, 8)
        assert data == b"ABCDEFGH"

    def test_byte_granularity(self, rig):
        rig.store(0, HEAP + 3, b"\xff")
        data, _ = rig.load(1, HEAP, 8)
        assert data == b"\x00\x00\x00\xff\x00\x00\x00\x00"


class TestProtocolStates:
    def test_write_leaves_modified_at_writer(self, rig):
        rig.store_int(1, HEAP, 5)
        line = rig.engine.hierarchies[1].l2.peek(HEAP)
        assert line.state is LineState.MODIFIED

    def test_remote_read_downgrades_owner(self, rig):
        rig.store_int(1, HEAP, 5)
        rig.load_int(2, HEAP)
        owner_line = rig.engine.hierarchies[1].l2.peek(HEAP)
        assert owner_line.state is LineState.SHARED

    def test_remote_write_invalidates_sharers(self, rig):
        rig.store_int(0, HEAP, 1)
        rig.load_int(1, HEAP)
        rig.load_int(2, HEAP)
        rig.store_int(3, HEAP, 9)
        for t in (0, 1, 2):
            assert rig.engine.hierarchies[t].l2.peek(HEAP) is None

    def test_upgrade_from_shared(self, rig):
        rig.load_int(1, HEAP)
        rig.store_int(1, HEAP, 3)
        line = rig.engine.hierarchies[1].l2.peek(HEAP)
        assert line.state is LineState.MODIFIED
        home = int(rig.space.home_tile(HEAP))
        entry = rig.engine.directories[home].entries[rig.space.line_of(HEAP)]
        assert entry.state is DirState.MODIFIED

    def test_directory_tracks_all_sharers(self, rig):
        for t in range(4):
            rig.load_int(t, HEAP)
        home = int(rig.space.home_tile(HEAP))
        entry = rig.engine.directories[home].entries[rig.space.line_of(HEAP)]
        assert len(entry.sharers) == 4
        assert entry.state is DirState.SHARED

    def test_invariants_hold_after_mixed_traffic(self, rig):
        for i in range(40):
            tile = i % 4
            address = HEAP + (i % 10) * 8
            if i % 3:
                rig.load_int(tile, address)
            else:
                rig.store_int(tile, address, i)
        rig.engine.check_coherence_invariants()


class TestLatencies:
    def test_l2_hit_is_cheap(self, rig):
        rig.store_int(0, HEAP, 1)
        _, miss_latency = rig.load_int(1, HEAP)
        _, hit_latency = rig.load_int(1, HEAP)
        assert hit_latency < miss_latency

    def test_dirty_remote_read_costs_more_than_clean(self, rig):
        # Clean shared read miss (data from DRAM at home).
        rig.store_int(0, HEAP, 1)
        rig.load_int(1, HEAP)          # downgrade to shared
        _, clean = rig.load_int(2, HEAP)
        # Dirty remote read (extra owner round trip).
        rig.store_int(0, HEAP + 128, 1)
        _, dirty = rig.load_int(2, HEAP + 128)
        assert dirty > 0 and clean > 0

    def test_upgrade_cheaper_than_write_miss(self, rig):
        rig.load_int(1, HEAP)          # S copy present
        upgrade = rig.store_int(1, HEAP, 2)
        miss = rig.store_int(2, HEAP + 256, 2)
        assert upgrade < miss  # no data fetch on the upgrade path

    def test_invalidations_add_latency(self, rig):
        # An upgrade with three other sharers pays invalidation round
        # trips that a sharer-free upgrade does not.
        for t in range(4):
            rig.load_int(t, HEAP)
        many = rig.store_int(0, HEAP, 1)
        rig.load_int(0, HEAP + 512)
        lone = rig.store_int(0, HEAP + 512, 1)
        assert many > lone


class TestEvictions:
    def test_dirty_eviction_writes_back(self):
        config = SimulationConfig(num_tiles=2)
        config.memory.l1i.enabled = False
        config.memory.l1d.enabled = False
        config.memory.l2.size_bytes = 4 * KB  # 64 lines: tiny L2
        config.memory.l2.associativity = 2
        rig = MemoryRig(config)
        rig.store_int(0, HEAP, 99)
        # Flood tile 0's L2 with conflicting lines to force eviction.
        for i in range(1, 200):
            rig.store_int(0, HEAP + i * 4 * KB, i)
        # The first line was evicted; data must survive in DRAM.
        assert rig.engine.hierarchies[0].l2.peek(HEAP) is None
        value, _ = rig.load_int(1, HEAP)
        assert value == 99
        rig.engine.check_coherence_invariants()

    def test_eviction_removes_directory_record(self):
        config = SimulationConfig(num_tiles=2)
        config.memory.l1i.enabled = False
        config.memory.l1d.enabled = False
        config.memory.l2.size_bytes = 4 * KB
        config.memory.l2.associativity = 2
        rig = MemoryRig(config)
        rig.load_int(0, HEAP)
        for i in range(1, 200):
            rig.load_int(0, HEAP + i * 4 * KB)
        home = int(rig.space.home_tile(HEAP))
        entry = rig.engine.directories[home].entries.get(
            rig.space.line_of(HEAP))
        assert entry is None or 0 not in \
            [int(t) for t in entry.sharers]
        rig.engine.check_coherence_invariants()


class TestDirectoryVariantsInProtocol:
    def test_limited_directory_thrashes_readers(self):
        config = SimulationConfig(num_tiles=8)
        config.memory.directory_type = "limited"
        config.memory.directory_max_sharers = 2
        rig = MemoryRig(config)
        rig.store_int(0, HEAP, 5)
        # 8 readers with 2 pointers: constant re-fetching.
        for round_ in range(3):
            for t in range(8):
                value, _ = rig.load_int(t, HEAP)
                assert value == 5
        home = int(rig.space.home_tile(HEAP))
        assert rig.engine.directories[home].stats.counter(
            "pointer_evictions").value > 10
        rig.engine.check_coherence_invariants()

    def test_limitless_retains_all_sharers(self):
        config = SimulationConfig(num_tiles=8)
        config.memory.directory_type = "limitless"
        config.memory.directory_max_sharers = 2
        rig = MemoryRig(config)
        rig.store_int(0, HEAP, 5)
        for t in range(8):
            rig.load_int(t, HEAP)
        home = int(rig.space.home_tile(HEAP))
        entry = rig.engine.directories[home].entries[rig.space.line_of(HEAP)]
        assert len(entry.sharers) == 8
        rig.engine.check_coherence_invariants()

    def test_limitless_second_read_round_is_trap_free(self):
        config = SimulationConfig(num_tiles=8)
        config.memory.directory_type = "limitless"
        config.memory.directory_max_sharers = 2
        rig = MemoryRig(config)
        for t in range(8):
            rig.load_int(t, HEAP)
        latencies = [rig.load_int(t, HEAP)[1] for t in range(8)]
        # All hits now: LimitLESS behaves like full-map once cached.
        l2_hit = config.memory.l2.access_latency
        l1_hit = config.memory.l1d.access_latency
        assert all(lat <= l1_hit + l2_hit for lat in latencies)
