"""Per-tile memory controller: splitting, L1 timing, fetches."""

import pytest

from repro.common.config import SimulationConfig
from repro.common.errors import TargetFault
from tests.conftest import MemoryRig

HEAP = 0x1000_0000
CODE = 0x100


@pytest.fixture
def rig():
    return MemoryRig(SimulationConfig(num_tiles=4))


class TestSplitting:
    def test_access_spanning_three_lines(self, rig):
        payload = bytes(range(130))  # 130 bytes > 2 lines of 64
        rig.store(0, HEAP + 30, payload)
        data, _ = rig.load(1, HEAP + 30, 130)
        assert data == payload

    def test_split_charges_each_line(self, rig):
        _, one_line = rig.load(0, HEAP + 4096, 8)
        _, two_lines = rig.load(0, HEAP + 8192 + 60, 8)
        assert two_lines > one_line


class TestL1Timing:
    def test_l1_hit_cheapest(self, rig):
        rig.load(0, HEAP, 8)             # L2 + L1 fill
        _, second = rig.load(0, HEAP, 8)  # L1 hit
        config = rig.config.memory
        assert second == config.l1d.access_latency

    def test_l2_hit_after_l1_eviction(self, rig):
        rig.load(0, HEAP, 8)
        # Evict from the (small) L1 by walking same-set lines.
        l1 = rig.engine.hierarchies[0].l1d
        stride = l1.num_sets * 64
        for i in range(1, l1.associativity + 2):
            rig.load(0, HEAP + i * stride, 8)
        _, latency = rig.load(0, HEAP, 8)
        config = rig.config.memory
        assert latency == config.l1d.access_latency + \
            config.l2.access_latency

    def test_disabled_l1_goes_straight_to_l2(self):
        config = SimulationConfig(num_tiles=2)
        config.memory.l1d.enabled = False
        config.memory.l1i.enabled = False
        rig = MemoryRig(config)
        rig.load(0, HEAP, 8)
        _, latency = rig.load(0, HEAP, 8)
        assert latency == config.memory.l2.access_latency


class TestStores:
    def test_store_hit_on_modified_line_is_l1_fast(self, rig):
        rig.store_int(0, HEAP, 1)
        latency = rig.store_int(0, HEAP, 2)
        assert latency == rig.config.memory.l1d.access_latency

    def test_store_to_shared_line_pays_upgrade(self, rig):
        rig.load(0, HEAP, 8)
        rig.load(1, HEAP, 8)
        latency = rig.store_int(0, HEAP, 1)
        assert latency > rig.config.memory.l2.access_latency


class TestFetch:
    def test_fetch_fills_l1i(self, rig):
        mc = rig.controllers[0]
        first = mc.fetch(CODE, 0)
        second = mc.fetch(CODE, 10)
        assert second == rig.config.memory.l1i.access_latency
        assert second < first

    def test_fetch_counts(self, rig):
        mc = rig.controllers[0]
        mc.fetch(CODE, 0)
        assert rig.stats.child("mc0").counter("fetches").value == 1


class TestFaults:
    def test_kernel_load_faults(self, rig):
        with pytest.raises(TargetFault):
            rig.load(0, 0xF000_0000, 8)

    def test_kernel_store_faults(self, rig):
        with pytest.raises(TargetFault):
            rig.store(0, 0xF000_0000, b"\0" * 8)

    def test_out_of_space_faults(self, rig):
        with pytest.raises(TargetFault):
            rig.load(0, 0x1_0000_0000, 8)


class TestBacking:
    def test_backing_read_line_is_copy(self, rig):
        rig.store(0, HEAP, b"\x55" * 8)
        line = rig.backing.read_line(rig.space.line_of(HEAP))
        line[0] = 0
        value, _ = rig.load_int(1, HEAP)
        assert value == int.from_bytes(b"\x55" * 8, "little")

    def test_backing_write_requires_full_line(self, rig):
        with pytest.raises(ValueError):
            rig.backing.write_line(0, b"short")
