"""Directory organisations: full-map, Dir_iNB, LimitLESS."""

import pytest

from repro.common.config import MemoryConfig
from repro.common.errors import ProtocolError
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.memory.directory import (
    DirState,
    DirectoryEntry,
    FullMapDirectory,
    LimitLessDirectory,
    LimitedDirectory,
    create_directory,
)


def make(kind, sharers=4):
    config = MemoryConfig(directory_type=kind,
                          directory_max_sharers=sharers)
    return create_directory(TileId(0), config, StatGroup("dir"))


class TestFactory:
    def test_kinds(self):
        assert isinstance(make("full_map"), FullMapDirectory)
        assert isinstance(make("limited"), LimitedDirectory)
        assert isinstance(make("limitless"), LimitLessDirectory)


class TestEntry:
    def test_entry_created_on_demand(self):
        directory = make("full_map")
        entry = directory.entry(0x1000)
        assert entry.state is DirState.UNCACHED
        assert directory.entry(0x1000) is entry

    def test_owner_requires_single_sharer(self):
        entry = DirectoryEntry(state=DirState.MODIFIED)
        entry.sharers[TileId(1)] = None
        assert entry.owner == TileId(1)

    def test_owner_with_many_sharers_is_protocol_error(self):
        entry = DirectoryEntry(state=DirState.MODIFIED)
        entry.sharers[TileId(1)] = None
        entry.sharers[TileId(2)] = None
        with pytest.raises(ProtocolError):
            _ = entry.owner

    def test_owner_none_when_not_modified(self):
        entry = DirectoryEntry(state=DirState.SHARED)
        entry.sharers[TileId(1)] = None
        assert entry.owner is None

    def test_remove_last_sharer_uncaches(self):
        directory = make("full_map")
        entry = directory.entry(0x0)
        directory.add_sharer(entry, TileId(3))
        entry.state = DirState.SHARED
        directory.remove_sharer(entry, TileId(3))
        assert entry.state is DirState.UNCACHED


class TestFullMap:
    def test_unbounded_sharers(self):
        directory = make("full_map")
        entry = directory.entry(0x0)
        for t in range(64):
            result = directory.add_sharer(entry, TileId(t))
            assert result.evict == []
            assert result.extra_latency == 0
        assert len(entry.sharers) == 64


class TestLimited:
    def test_eviction_beyond_pointer_limit(self):
        directory = make("limited", sharers=4)
        entry = directory.entry(0x0)
        for t in range(4):
            directory.add_sharer(entry, TileId(t))
        result = directory.add_sharer(entry, TileId(4))
        assert result.evict == [TileId(0)]  # oldest pointer evicted
        assert len(entry.sharers) == 4

    def test_re_adding_existing_sharer_no_eviction(self):
        directory = make("limited", sharers=2)
        entry = directory.entry(0x0)
        directory.add_sharer(entry, TileId(0))
        directory.add_sharer(entry, TileId(1))
        result = directory.add_sharer(entry, TileId(1))
        assert result.evict == []

    def test_thrash_under_round_robin_readers(self):
        """The Figure 9 pathology: i+1 readers thrash i pointers."""
        directory = make("limited", sharers=4)
        entry = directory.entry(0x0)
        evictions = 0
        for round_ in range(3):
            for t in range(5):
                evictions += len(
                    directory.add_sharer(entry, TileId(t)).evict)
        assert evictions >= 5

    def test_eviction_counter(self):
        directory = make("limited", sharers=1)
        entry = directory.entry(0x0)
        directory.add_sharer(entry, TileId(0))
        directory.add_sharer(entry, TileId(1))
        assert directory.stats.counter("pointer_evictions").value == 1


class TestLimitLess:
    def test_overflow_traps_but_keeps_sharers(self):
        directory = make("limitless", sharers=4)
        entry = directory.entry(0x0)
        for t in range(4):
            result = directory.add_sharer(entry, TileId(t))
            assert result.extra_latency == 0
        result = directory.add_sharer(entry, TileId(4))
        assert result.extra_latency == \
            MemoryConfig().limitless_trap_latency
        assert result.evict == []
        assert len(entry.sharers) == 5

    def test_cached_sharers_no_further_traps(self):
        """Once cached, re-reads don't trap: LimitLESS ~ full-map."""
        directory = make("limitless", sharers=2)
        entry = directory.entry(0x0)
        for t in range(5):
            directory.add_sharer(entry, TileId(t))
        result = directory.add_sharer(entry, TileId(3))  # already present
        assert result.extra_latency == 0

    def test_invalidation_of_overflowed_entry_traps(self):
        directory = make("limitless", sharers=2)
        entry = directory.entry(0x0)
        for t in range(3):
            directory.add_sharer(entry, TileId(t))
        assert directory.invalidation_latency(entry) > 0

    def test_invalidation_within_pointers_free(self):
        directory = make("limitless", sharers=4)
        entry = directory.entry(0x0)
        directory.add_sharer(entry, TileId(0))
        assert directory.invalidation_latency(entry) == 0
