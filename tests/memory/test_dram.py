"""DRAM controller: bandwidth partitioning and queueing."""

import pytest

from repro.common.config import DramConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.memory.dram import DramController
from repro.sync.progress import ProgressEstimator


def make(num_tiles=32, **overrides):
    config = DramConfig(**overrides)
    return DramController(TileId(0), config, num_tiles,
                          clock_hz=1_000_000_000,
                          progress=ProgressEstimator(num_tiles),
                          stats=StatGroup("dram"))


class TestBandwidthPartitioning:
    """Total off-chip bandwidth is statically split (paper §4.4)."""

    def test_per_controller_share(self):
        total = DramConfig().total_bandwidth_bytes_per_s
        dram = make(num_tiles=32)
        assert dram.bytes_per_cycle == pytest.approx(total / 1e9 / 32)

    def test_more_tiles_less_bandwidth_each(self):
        few = make(num_tiles=16)
        many = make(num_tiles=256)
        assert many.bytes_per_cycle < few.bytes_per_cycle

    def test_service_time_grows_with_tile_count(self):
        """The Figure 9 mechanism: service time rises with tiles."""
        few = make(num_tiles=16)
        many = make(num_tiles=256)
        assert many.service_cycles(64) > few.service_cycles(64)

    def test_service_time_at_least_one_cycle(self):
        dram = make(num_tiles=1)
        assert dram.service_cycles(1) >= 1


class TestLatency:
    def test_read_includes_access_latency(self):
        dram = make()
        assert dram.read(1000, 64) >= DramConfig().access_latency

    def test_queueing_under_load(self):
        dram = make()
        first = dram.read(1000, 64)
        for _ in range(10):
            dram.read(1000, 64)
        assert dram.read(1000, 64) > first

    def test_posted_writes_consume_bandwidth(self):
        dram = make()
        baseline = dram.read(1000, 64)
        for _ in range(10):
            dram.post_write(1000, 64)
        assert dram.read(1000, 64) > baseline

    def test_statistics(self):
        stats = StatGroup("dram")
        dram = DramController(TileId(0), DramConfig(), 32, 10**9,
                              ProgressEstimator(8), stats)
        dram.read(0, 64)
        dram.post_write(0, 64)
        assert stats.counter("reads").value == 1
        assert stats.counter("writes").value == 1
