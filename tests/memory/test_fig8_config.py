"""The Figure 8 memory configuration (single-level 1 MB cache).

Paper §4.4: "the L1I and L1D cache models supported by the Graphite
system are disabled and all memory accesses are redirected to the L2
cache ... The L2 cache modeled is a 1MB 4-way set associative cache."
"""

import pytest

from repro.common.config import SimulationConfig
from repro.common.units import MB
from tests.conftest import MemoryRig

HEAP = 0x1000_0000


def fig8_rig(line_bytes=64):
    config = SimulationConfig(num_tiles=4)
    config.memory.l1i.enabled = False
    config.memory.l1d.enabled = False
    config.memory.l2.size_bytes = 1 * MB
    config.memory.l2.associativity = 4
    config.memory.l2.line_bytes = line_bytes
    config.memory.classify_misses = True
    config.validate()
    return MemoryRig(config, classify=True)


class TestSingleLevelConfig:
    def test_l1_disabled(self):
        rig = fig8_rig()
        assert rig.engine.hierarchies[0].l1d is None
        assert rig.engine.hierarchies[0].l1i is None

    def test_all_accesses_hit_l2_directly(self):
        rig = fig8_rig()
        rig.load(0, HEAP, 8)
        rig.load(0, HEAP, 8)
        lookups = rig.stats.to_dict()
        l2 = sum(v for k, v in lookups.items()
                 if ".l2.lookups" in k)
        assert l2 == 2

    @pytest.mark.parametrize("line", [4, 8, 16, 32, 64, 128, 256])
    def test_every_figure8_line_size_works(self, line):
        rig = fig8_rig(line_bytes=line)
        rig.store_int(0, HEAP, 5)
        value, _ = rig.load_int(1, HEAP)
        assert value == 5
        rig.engine.check_coherence_invariants()

    def test_line_size_changes_sharing_granularity(self):
        """At 4 B lines, two 8-byte-apart words never false-share; at
        256 B they do."""
        from repro.memory.miss_classifier import MissType

        small = fig8_rig(line_bytes=8)
        small.load_int(0, HEAP)
        small.store_int(1, HEAP + 8, 1)  # different 8B line
        # Tile 0's line untouched: next read is a hit.
        _, latency = small.load_int(0, HEAP)
        assert latency == small.config.memory.l2.access_latency

        big = fig8_rig(line_bytes=256)
        big.load_int(0, HEAP)
        big.store_int(1, HEAP + 8, 1)  # same 256B line: invalidation
        big.load_int(0, HEAP)
        counts = big.classifier.counts()
        assert counts[MissType.FALSE_SHARING] >= 1

    def test_capacity_misses_with_oversized_working_set(self):
        """Touch > 1 MB: capacity misses must appear."""
        from repro.memory.miss_classifier import MissType

        rig = fig8_rig()
        lines = (1 * MB // 64) + 512
        for i in range(lines):
            rig.load(0, HEAP + i * 64, 8)
        for i in range(64):  # re-touch the start: evicted by now
            rig.load(0, HEAP + i * 64, 8)
        counts = rig.classifier.counts()
        assert counts[MissType.CAPACITY] > 0
