"""Clean-shared cache-to-cache forwarding (and its ablation)."""


from repro.common.config import SimulationConfig
from tests.conftest import MemoryRig

HEAP = 0x1000_0000


def rig_with(forward: bool, tiles: int = 8) -> MemoryRig:
    config = SimulationConfig(num_tiles=tiles)
    config.memory.forward_shared_reads = forward
    return MemoryRig(config)


class TestForwardingOn:
    def test_second_sharer_skips_dram(self):
        rig = rig_with(True)
        rig.load_int(0, HEAP)   # UNCACHED -> DRAM read
        dram_reads_before = sum(
            v for k, v in rig.stats.to_dict().items()
            if ".reads" in k and "dram" in k)
        rig.load_int(1, HEAP)   # forwarded from tile 0
        dram_reads_after = sum(
            v for k, v in rig.stats.to_dict().items()
            if ".reads" in k and "dram" in k)
        assert dram_reads_after == dram_reads_before

    def test_forwarded_read_functionally_correct(self):
        rig = rig_with(True)
        rig.store_int(0, HEAP, 77)
        rig.load_int(1, HEAP)   # downgrade + data
        value, _ = rig.load_int(2, HEAP)  # forwarded from a sharer
        assert value == 77
        rig.engine.check_coherence_invariants()

    def test_many_sharers_no_dram_pressure(self):
        rig = rig_with(True)
        rig.load_int(0, HEAP)
        before = rig.stats.to_dict()
        for t in range(1, 8):
            rig.load_int(t, HEAP)
        after = rig.stats.to_dict()
        def dram(d):
            return sum(v for k, v in d.items()
                       if "dram" in k and k.endswith(".reads"))
        assert dram(after) == dram(before)


class TestForwardingOff:
    def test_every_sharer_reads_dram(self):
        rig = rig_with(False)
        for t in range(4):
            rig.load_int(t, HEAP)
        dram_reads = sum(v for k, v in rig.stats.to_dict().items()
                         if "dram" in k and k.endswith(".reads"))
        # One DRAM read per sharer fill (plus instruction fetches).
        assert dram_reads >= 4

    def test_functional_equivalence(self):
        """Forwarding is a pure timing optimisation."""
        for forward in (True, False):
            rig = rig_with(forward)
            rig.store_int(0, HEAP, 5)
            rig.load_int(1, HEAP)
            rig.store_int(2, HEAP + 8, 9)
            values = [rig.load_int(t, HEAP)[0] for t in range(4)]
            assert values == [5, 5, 5, 5]
            rig.engine.check_coherence_invariants()


class TestDirtyPathUnchanged:
    def test_dirty_line_still_recalled_from_owner(self):
        rig = rig_with(True)
        rig.store_int(3, HEAP, 123)
        value, _ = rig.load_int(1, HEAP)
        assert value == 123
        # Owner downgraded, not invalidated.
        from repro.memory.cache import LineState
        line = rig.engine.hierarchies[3].l2.peek(rig.space.line_of(HEAP))
        assert line is not None and line.state is LineState.SHARED
