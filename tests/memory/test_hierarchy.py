"""Cache hierarchy: L1 tag arrays, inclusion with the L2."""


from repro.common.config import MemoryConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.common.units import KB
from repro.memory.cache import LineState
from repro.memory.hierarchy import CacheHierarchy


def make(l1_enabled=True, l2_size=64 * KB, l2_ways=2):
    config = MemoryConfig()
    config.l1i.enabled = l1_enabled
    config.l1d.enabled = l1_enabled
    config.l2.size_bytes = l2_size
    config.l2.associativity = l2_ways
    return CacheHierarchy(TileId(0), config, StatGroup("h"))


class TestL1:
    def test_miss_then_hit_after_fill(self):
        h = make()
        assert not h.l1d_hit(0x1000)
        h.fill_l1d(0x1000)
        assert h.l1d_hit(0x1000)

    def test_disabled_l1_always_misses(self):
        h = make(l1_enabled=False)
        h.fill_l1d(0x1000)  # no-op
        assert not h.l1d_hit(0x1000)
        assert h.l1d is None

    def test_l1i_l1d_independent(self):
        h = make()
        h.fill_l1i(0x1000)
        assert h.l1i_hit(0x1000)
        assert not h.l1d_hit(0x1000)


class TestInclusion:
    def test_l2_eviction_purges_l1(self):
        h = make(l2_size=4 * KB, l2_ways=1)  # 64 one-way sets
        step = 64 * 64  # same-set stride
        h.fill_l2(0x0, LineState.SHARED, bytearray(64))
        h.fill_l1d(0x0)
        h.fill_l2(step, LineState.SHARED, bytearray(64))  # evicts 0x0
        assert not h.l1d_hit(0x0)
        assert h.check_inclusion()

    def test_invalidate_purges_all_levels(self):
        h = make()
        h.fill_l2(0x40, LineState.MODIFIED, bytearray(64))
        h.fill_l1d(0x40)
        h.fill_l1i(0x40)
        line = h.invalidate(0x40)
        assert line.state is LineState.MODIFIED
        assert not h.l1d_hit(0x40)
        assert not h.l1i_hit(0x40)
        assert h.l2.peek(0x40) is None

    def test_inclusion_invariant_checker(self):
        h = make()
        h.fill_l2(0x0, LineState.SHARED, bytearray(64))
        h.fill_l1d(0x0)
        assert h.check_inclusion()
        h.l2.remove(0x0)  # break inclusion deliberately
        assert not h.check_inclusion()


class TestDowngrade:
    def test_downgrade_keeps_data(self):
        h = make()
        h.fill_l2(0x80, LineState.MODIFIED, bytearray(b"z" * 64))
        line = h.downgrade(0x80)
        assert line.state is LineState.SHARED
        assert bytes(line.data) == b"z" * 64

    def test_downgrade_absent_returns_none(self):
        assert make().downgrade(0x80) is None


class TestVictims:
    def test_fill_returns_victim(self):
        h = make(l2_size=4 * KB, l2_ways=1)
        step = 64 * 64
        h.fill_l2(0x0, LineState.MODIFIED, bytearray(64))
        victim = h.fill_l2(step, LineState.SHARED, bytearray(64))
        assert victim.address == 0x0
        assert victim.state is LineState.MODIFIED

    def test_no_victim_when_room(self):
        h = make()
        assert h.fill_l2(0x0, LineState.SHARED, bytearray(64)) is None

    def test_resident_lines_listing(self):
        h = make()
        h.fill_l2(0x0, LineState.SHARED, bytearray(64))
        h.fill_l2(0x40, LineState.MODIFIED, bytearray(64))
        assert {line.address for line in h.resident_l2_lines()} == \
            {0x0, 0x40}
