"""The MESI protocol variant (Exclusive state)."""

import pytest

from repro.common.config import SimulationConfig
from repro.common.errors import ConfigError
from repro.memory.cache import LineState
from repro.memory.directory import DirState
from tests.conftest import MemoryRig

HEAP = 0x1000_0000


def rig(protocol="mesi", tiles=4):
    config = SimulationConfig(num_tiles=tiles)
    config.memory.protocol = protocol
    return MemoryRig(config)


class TestExclusiveGrant:
    def test_uncontended_read_returns_exclusive(self):
        r = rig()
        r.load_int(0, HEAP)
        line = r.engine.hierarchies[0].l2.peek(r.space.line_of(HEAP))
        assert line.state is LineState.EXCLUSIVE
        r.engine.check_coherence_invariants()

    def test_msi_never_grants_exclusive(self):
        r = rig(protocol="msi")
        r.load_int(0, HEAP)
        line = r.engine.hierarchies[0].l2.peek(r.space.line_of(HEAP))
        assert line.state is LineState.SHARED

    def test_second_reader_gets_shared(self):
        r = rig()
        r.load_int(0, HEAP)
        r.load_int(1, HEAP)
        for tile in (0, 1):
            line = r.engine.hierarchies[tile].l2.peek(
                r.space.line_of(HEAP))
            assert line.state is LineState.SHARED
        r.engine.check_coherence_invariants()

    def test_directory_records_exclusive_holder_as_owner(self):
        r = rig()
        r.load_int(2, HEAP)
        home = int(r.space.home_tile(HEAP))
        entry = r.engine.directories[home].entries[r.space.line_of(HEAP)]
        assert entry.state is DirState.MODIFIED
        assert int(entry.owner) == 2


class TestSilentUpgrade:
    def test_store_to_exclusive_is_silent(self):
        r = rig()
        r.load_int(0, HEAP)
        transfers_before = r.transport.stats.counter(
            "messages_sent").value
        latency = r.store_int(0, HEAP, 7)
        transfers_after = r.transport.stats.counter(
            "messages_sent").value
        # No coherence traffic at all; just the cache write.
        assert transfers_after == transfers_before
        assert latency <= r.config.memory.l1d.access_latency + \
            r.config.memory.l2.access_latency
        line = r.engine.hierarchies[0].l2.peek(r.space.line_of(HEAP))
        assert line.state is LineState.MODIFIED
        r.engine.check_coherence_invariants()

    def test_msi_pays_upgrade_for_same_pattern(self):
        """Read-then-write: MESI silent, MSI needs the round trip."""
        msi = rig(protocol="msi")
        msi.load_int(0, HEAP)
        msi_latency = msi.store_int(0, HEAP, 7)
        mesi = rig(protocol="mesi")
        mesi.load_int(0, HEAP)
        mesi_latency = mesi.store_int(0, HEAP, 7)
        assert mesi_latency < msi_latency

    def test_functional_value_after_silent_upgrade(self):
        r = rig()
        r.load_int(0, HEAP)
        r.store_int(0, HEAP, 99)
        value, _ = r.load_int(3, HEAP)
        assert value == 99
        r.engine.check_coherence_invariants()


class TestRecalls:
    def test_remote_read_downgrades_exclusive_holder(self):
        r = rig()
        r.load_int(0, HEAP)        # E at tile 0
        value, _ = r.load_int(1, HEAP)
        assert value == 0
        line = r.engine.hierarchies[0].l2.peek(r.space.line_of(HEAP))
        assert line.state is LineState.SHARED
        r.engine.check_coherence_invariants()

    def test_remote_write_invalidates_exclusive_holder(self):
        r = rig()
        r.load_int(0, HEAP)        # E at tile 0
        r.store_int(1, HEAP, 5)
        assert r.engine.hierarchies[0].l2.peek(
            r.space.line_of(HEAP)) is None
        value, _ = r.load_int(2, HEAP)
        assert value == 5
        r.engine.check_coherence_invariants()

    def test_exclusive_eviction_is_clean(self):
        config = SimulationConfig(num_tiles=2)
        config.memory.protocol = "mesi"
        config.memory.l1i.enabled = False
        config.memory.l1d.enabled = False
        config.memory.l2.size_bytes = 4096
        config.memory.l2.associativity = 2
        r = MemoryRig(config)
        r.load_int(0, HEAP)
        writes_before = sum(v for k, v in r.stats.to_dict().items()
                            if "dram" in k and k.endswith(".writes"))
        for i in range(1, 200):  # force eviction of the E line
            r.load_int(0, HEAP + i * 4096)
        writes_after = sum(v for k, v in r.stats.to_dict().items()
                           if "dram" in k and k.endswith(".writes"))
        assert writes_after == writes_before  # clean: no writebacks
        r.engine.check_coherence_invariants()


class TestValidation:
    def test_unknown_protocol_rejected(self):
        config = SimulationConfig()
        config.memory.protocol = "moesi"
        with pytest.raises(ConfigError):
            config.validate()

    def test_full_simulation_under_mesi(self):
        from repro.sim.simulator import Simulator
        from repro.workloads import get_workload
        from tests.conftest import tiny_config

        config = tiny_config(4)
        config.memory.protocol = "mesi"
        simulator = Simulator(config)
        result = simulator.run(
            get_workload("radix").main(nthreads=4, scale=0.2))
        assert result.main_result is True
        simulator.engine.check_coherence_invariants()
