"""Miss classification: cold / capacity / true / false sharing."""

import pytest

from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.memory.miss_classifier import MissClassifier, MissType


@pytest.fixture
def classifier():
    return MissClassifier(num_tiles=4, line_bytes=64,
                          stats=StatGroup("cls"))


T0, T1, T2 = TileId(0), TileId(1), TileId(2)
LINE = 0x1000


class TestCold:
    def test_first_access_is_cold(self, classifier):
        assert classifier.classify(T0, LINE, 8) is MissType.COLD

    def test_cold_per_tile(self, classifier):
        classifier.classify(T0, LINE, 8)
        classifier.note_fill(T0, LINE)
        assert classifier.classify(T1, LINE, 8) is MissType.COLD

    def test_distinct_lines_each_cold(self, classifier):
        classifier.classify(T0, LINE, 8)
        assert classifier.classify(T0, LINE + 64, 8) is MissType.COLD


class TestCapacity:
    def test_eviction_then_miss_is_capacity(self, classifier):
        classifier.note_fill(T0, LINE)
        classifier.note_eviction(T0, LINE)
        assert classifier.classify(T0, LINE, 8) is MissType.CAPACITY

    def test_refill_resets_removal(self, classifier):
        classifier.note_fill(T0, LINE)
        classifier.note_eviction(T0, LINE)
        classifier.note_fill(T0, LINE)
        classifier.note_eviction(T0, LINE)
        assert classifier.classify(T0, LINE, 8) is MissType.CAPACITY


class TestSharing:
    def test_true_sharing(self, classifier):
        """Remote write to the word we then read -> true sharing."""
        classifier.note_fill(T0, LINE)
        classifier.note_invalidation(T0, LINE, due_to_write=True)
        classifier.note_store(T1, LINE + 8, 8)  # writes words 2-3
        assert classifier.classify(T0, LINE + 8, 8) is \
            MissType.TRUE_SHARING

    def test_false_sharing(self, classifier):
        """Remote write to a different word -> false sharing."""
        classifier.note_fill(T0, LINE)
        classifier.note_invalidation(T0, LINE, due_to_write=True)
        classifier.note_store(T1, LINE + 32, 8)
        assert classifier.classify(T0, LINE, 8) is \
            MissType.FALSE_SHARING

    def test_write_before_invalidation_not_counted(self, classifier):
        classifier.note_store(T1, LINE, 8)  # old write
        classifier.note_fill(T0, LINE)
        classifier.note_invalidation(T0, LINE, due_to_write=True)
        classifier.note_store(T1, LINE + 32, 8)  # the relevant write
        assert classifier.classify(T0, LINE, 8) is \
            MissType.FALSE_SHARING

    def test_overlapping_multiword_access(self, classifier):
        classifier.note_fill(T0, LINE)
        classifier.note_invalidation(T0, LINE, due_to_write=True)
        classifier.note_store(T1, LINE + 12, 4)
        # A 16-byte read covering the written word is true sharing.
        assert classifier.classify(T0, LINE, 16) is \
            MissType.TRUE_SHARING

    def test_pointer_eviction_is_coherence(self, classifier):
        classifier.note_fill(T0, LINE)
        classifier.note_invalidation(T0, LINE, due_to_write=False)
        assert classifier.classify(T0, LINE, 8) is MissType.COHERENCE


class TestCounts:
    def test_counts_accumulate(self, classifier):
        classifier.classify(T0, LINE, 8)
        classifier.note_fill(T0, LINE)
        classifier.note_eviction(T0, LINE)
        classifier.classify(T0, LINE, 8)
        counts = classifier.counts()
        assert counts[MissType.COLD] == 1
        assert counts[MissType.CAPACITY] == 1
        assert classifier.total_misses == 2


class TestLineGranularity:
    def test_small_lines_cannot_false_share(self):
        """With 8-byte lines a word *is* the line: sharing is true."""
        classifier = MissClassifier(2, 8, StatGroup("c"))
        classifier.note_fill(T0, LINE)
        classifier.note_invalidation(T0, LINE, due_to_write=True)
        classifier.note_store(T1, LINE, 8)
        assert classifier.classify(T0, LINE, 8) is MissType.TRUE_SHARING

    def test_large_lines_false_share_across_records(self):
        classifier = MissClassifier(2, 256, StatGroup("c"))
        base = 0x2000
        classifier.note_fill(T0, base)
        classifier.note_invalidation(T0, base, due_to_write=True)
        classifier.note_store(T1, base + 128, 8)  # far word, same line
        assert classifier.classify(T0, base, 8) is \
            MissType.FALSE_SHARING
