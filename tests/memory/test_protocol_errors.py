"""Protocol-error detection: the strict invariants must actually fire."""

import pytest

from repro.common.config import SimulationConfig
from repro.common.errors import ProtocolError
from repro.common.ids import TileId
from repro.memory.cache import LineState
from tests.conftest import MemoryRig

HEAP = 0x1000_0000


@pytest.fixture
def rig():
    return MemoryRig(SimulationConfig(num_tiles=4))


class TestInvariantChecker:
    def test_clean_state_passes(self, rig):
        rig.store_int(0, HEAP, 1)
        rig.load_int(1, HEAP)
        rig.engine.check_coherence_invariants()

    def test_detects_orphan_cache_line(self, rig):
        rig.load_int(0, HEAP)
        # Corrupt: a line cached with no directory record.
        rig.engine.hierarchies[1].fill_l2(
            rig.space.line_of(HEAP) + 0x4000, LineState.SHARED,
            bytearray(64))
        with pytest.raises(ProtocolError):
            rig.engine.check_coherence_invariants()

    def test_detects_missing_owner_copy(self, rig):
        rig.store_int(2, HEAP, 1)
        line = rig.space.line_of(HEAP)
        # Corrupt: drop the owner's line behind the directory's back.
        rig.engine.hierarchies[2].l2.remove(line)
        with pytest.raises(ProtocolError):
            rig.engine.check_coherence_invariants()

    def test_detects_state_mismatch(self, rig):
        rig.load_int(0, HEAP)
        line = rig.engine.hierarchies[0].l2.peek(rig.space.line_of(HEAP))
        line.state = LineState.MODIFIED  # cache says M, directory says S
        with pytest.raises(ProtocolError):
            rig.engine.check_coherence_invariants()

    def test_detects_shared_entry_without_sharers(self, rig):
        rig.load_int(0, HEAP)
        home = int(rig.space.home_tile(HEAP))
        entry = rig.engine.directories[home].entries[
            rig.space.line_of(HEAP)]
        rig.engine.hierarchies[0].l2.remove(rig.space.line_of(HEAP))
        entry.sharers.clear()  # SHARED with empty sharer set
        with pytest.raises(ProtocolError):
            rig.engine.check_coherence_invariants()

    def test_detects_inclusion_violation(self, rig):
        rig.load_int(0, HEAP)
        rig.engine.hierarchies[0].l2.remove(rig.space.line_of(HEAP))
        # L1 still holds the tag: inclusion broken (and the directory
        # also disagrees).
        with pytest.raises(ProtocolError):
            rig.engine.check_coherence_invariants()


class TestDirectoryEntryGuards:
    def test_modified_multi_sharer_owner_query_raises(self, rig):
        rig.store_int(0, HEAP, 1)
        home = int(rig.space.home_tile(HEAP))
        entry = rig.engine.directories[home].entries[
            rig.space.line_of(HEAP)]
        entry.sharers[TileId(1)] = None  # corrupt: two "owners"
        with pytest.raises(ProtocolError):
            _ = entry.owner

    def test_recall_from_tileless_owner_raises(self, rig):
        rig.store_int(0, HEAP, 1)
        line = rig.space.line_of(HEAP)
        rig.engine.hierarchies[0].l2.remove(line)  # owner lost the line
        with pytest.raises(ProtocolError):
            rig.load_int(1, HEAP)


class TestDirtyVictimGuard:
    def test_dirty_victim_without_data_raises(self, rig):
        from repro.memory.cache import CacheLine

        victim = CacheLine(rig.space.line_of(HEAP), LineState.MODIFIED,
                           None)
        with pytest.raises(ProtocolError):
            rig.engine._handle_victim(TileId(0), victim, 0)
