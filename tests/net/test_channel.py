"""Channel semantics both carriers must share: framing, EOF, liveness."""

from __future__ import annotations

import multiprocessing
import socket
import struct

import pytest

from repro.net.channel import ChannelClosedError, PipeChannel, TcpChannel
from repro.transport.frames import FrameError


def _tcp_pair():
    a, b = socket.socketpair()
    return TcpChannel(a, peer="left"), TcpChannel(b, peer="right")


def _pipe_pair():
    a, b = multiprocessing.Pipe(duplex=True)
    return PipeChannel(a), PipeChannel(b)


@pytest.fixture(params=["tcp", "pipe"])
def pair(request):
    left, right = _tcp_pair() if request.param == "tcp" else _pipe_pair()
    yield left, right
    left.close()
    right.close()


def test_round_trip_and_poll(pair):
    left, right = pair
    assert not right.poll(0.0)
    left.send_bytes(b"hello across")
    assert right.poll(1.0)
    assert right.recv_bytes() == b"hello across"
    assert not right.poll(0.0)


def test_peer_close_surfaces_as_channel_closed(pair):
    left, right = pair
    left.close()
    assert right.poll(1.0)  # EOF counts as "ready"
    with pytest.raises(ChannelClosedError):
        right.recv_bytes()


def test_send_to_closed_peer_raises_channel_closed(pair):
    left, right = pair
    right.close()
    with pytest.raises(ChannelClosedError):
        for _ in range(64):  # outrun any socket buffering
            left.send_bytes(b"x" * 4096)


def test_tcp_partial_frame_then_close_is_channel_closed():
    """A peer dying mid-frame must not hang or mis-deliver."""
    a, b = socket.socketpair()
    channel = TcpChannel(b, peer="victim")
    a.sendall(struct.pack(">I", 1000) + b"only-forty-bytes-of-it")
    a.close()
    with pytest.raises(ChannelClosedError, match="closed"):
        channel.recv_bytes()
    channel.close()


def test_tcp_oversized_frame_is_protocol_violation_not_eof():
    a, b = socket.socketpair()
    channel = TcpChannel(b, peer="hostile")
    a.sendall(struct.pack(">I", 0xFFFFFFF0))
    with pytest.raises(FrameError):
        channel.recv_bytes()
    a.close()
    channel.close()


def test_tcp_alive_tracks_peer_eof():
    left, right = _tcp_pair()
    assert right.alive()
    left.send_bytes(b"last words")
    left.close()
    assert right.alive()  # buffered frame still readable
    assert right.recv_bytes() == b"last words"
    assert not right.alive()
    right.close()


def test_pipe_alive_tracks_child_process():
    parent, child = multiprocessing.Pipe(duplex=True)
    proc = multiprocessing.get_context("fork").Process(
        target=lambda conn: conn.recv_bytes(), args=(child,))
    proc.start()
    channel = PipeChannel(parent, proc=proc)
    assert channel.alive()
    assert channel.exitcode() is None
    channel.send_bytes(b"done")
    proc.join(timeout=5.0)
    assert not channel.alive()
    assert channel.exitcode() == 0
    assert "pid" in channel.describe()
    channel.close()


def test_describe_names_the_transport():
    left, right = _tcp_pair()
    assert left.describe().startswith("tcp ")
    left.close()
    right.close()
    a, b = multiprocessing.Pipe()
    assert PipeChannel(a).describe() == "pipe"
    a.close()
    b.close()
