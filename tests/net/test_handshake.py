"""The hello/welcome exchange: round trips and loud version failures."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.net.handshake import (
    WIRE_VERSION,
    HandshakeError,
    Hello,
    Reject,
    Welcome,
    decode_handshake,
    encode_handshake,
    greet_dialer,
    greet_listener,
)
from repro.transport.frames import recv_frame, send_frame


def test_frames_round_trip():
    for frame in (
        Hello(role="worker", net_version=1, wire_version=5, pid=42,
              host="box"),
        Welcome(role="coordinator", net_version=1, wire_version=5,
                config_fingerprint="abc123"),
        Reject(reason="wrong wire"),
    ):
        assert decode_handshake(encode_handshake(frame)) == frame


def test_decode_rejects_garbage():
    with pytest.raises(HandshakeError):
        decode_handshake(b"\x80\x04not json")
    with pytest.raises(HandshakeError):
        decode_handshake(b'{"kind": "no-such-frame"}')


def _paired_greet(listener_fn, dialer_fn):
    """Run both greeting halves over a socketpair; return their fates."""
    a, b = socket.socketpair()
    results = {}

    def _listener():
        try:
            results["listener"] = listener_fn(a)
        except Exception as exc:  # noqa: BLE001 - recorded for asserts
            results["listener"] = exc

    thread = threading.Thread(target=_listener)
    thread.start()
    try:
        results["dialer"] = dialer_fn(b)
    except Exception as exc:  # noqa: BLE001 - recorded for asserts
        results["dialer"] = exc
    thread.join(timeout=5.0)
    a.close()
    b.close()
    return results


def test_matched_versions_exchange_roles_and_fingerprint():
    results = _paired_greet(
        lambda s: greet_dialer(s, "coordinator", wire_version=5,
                               config_fingerprint="deadbeef"),
        lambda s: greet_listener(s, wire_version=5))
    hello = results["listener"]
    welcome = results["dialer"]
    assert isinstance(hello, Hello) and hello.role == "worker"
    assert isinstance(welcome, Welcome)
    assert welcome.role == "coordinator"
    assert welcome.config_fingerprint == "deadbeef"


def test_wire_version_skew_fails_both_ends():
    results = _paired_greet(
        lambda s: greet_dialer(s, "coordinator", wire_version=5,
                               config_fingerprint=""),
        lambda s: greet_listener(s, wire_version=4))
    assert isinstance(results["listener"], HandshakeError)
    assert isinstance(results["dialer"], HandshakeError)
    assert "wire" in str(results["dialer"]).lower()


def test_net_version_skew_fails_the_dialer():
    """A dialer speaking a future handshake protocol is rejected."""
    def _dial(s):
        send_frame(s, encode_handshake(Hello(
            role="worker", net_version=WIRE_VERSION + 1,
            wire_version=5, pid=1, host="future")))
        return decode_handshake(recv_frame(s))

    results = _paired_greet(
        lambda s: greet_dialer(s, "coordinator", wire_version=5,
                               config_fingerprint=""),
        _dial)
    assert isinstance(results["listener"], HandshakeError)
    assert isinstance(results["dialer"], Reject)


def test_peer_vanishing_mid_handshake_is_a_handshake_error():
    a, b = socket.socketpair()
    b.close()
    with pytest.raises(HandshakeError):
        greet_listener(a, wire_version=5)
    a.close()
