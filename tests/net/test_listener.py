"""Listener accept loop and the worker-side dialer."""

from __future__ import annotations

import threading

import pytest

from repro.net.handshake import HandshakeError
from repro.net.listener import NetListener, connect_worker, parse_address


def test_parse_address():
    assert parse_address("10.0.0.7:4242") == ("10.0.0.7", 4242)
    assert parse_address(":9000") == ("127.0.0.1", 9000)
    with pytest.raises(ValueError, match="host:port"):
        parse_address("no-port-here")


def test_accept_times_out_to_none():
    listener = NetListener("127.0.0.1:0", role="coordinator",
                           wire_version=5)
    assert listener.accept(0.0) is None
    assert listener.accept(0.05) is None
    listener.close()


def test_dial_accept_round_trip_carries_fingerprint_and_pid():
    listener = NetListener("127.0.0.1:0", role="coordinator",
                           wire_version=5, config_fingerprint="f00d")
    accepted = {}

    def _accept():
        accepted["pair"] = listener.accept(5.0)

    thread = threading.Thread(target=_accept)
    thread.start()
    channel, welcome = connect_worker(listener.address, wire_version=5)
    thread.join(timeout=5.0)
    assert welcome.role == "coordinator"
    assert welcome.config_fingerprint == "f00d"
    server_channel, hello = accepted["pair"]
    assert hello.role == "worker"
    import os
    assert hello.pid == os.getpid()
    # The handshaken pair is a live framed byte path in both directions.
    channel.send_bytes(b"ping")
    assert server_channel.recv_bytes() == b"ping"
    server_channel.send_bytes(b"pong")
    assert channel.recv_bytes() == b"pong"
    channel.close()
    server_channel.close()
    listener.close()


def test_version_mismatch_fails_dialer_and_listener():
    listener = NetListener("127.0.0.1:0", role="coordinator",
                           wire_version=5)
    failures = {}

    def _accept():
        try:
            listener.accept(5.0)
        except HandshakeError as exc:
            failures["listener"] = exc

    thread = threading.Thread(target=_accept)
    thread.start()
    with pytest.raises(HandshakeError, match="wire mismatch"):
        connect_worker(listener.address, wire_version=4)
    thread.join(timeout=5.0)
    assert isinstance(failures.get("listener"), HandshakeError)
    listener.close()


def test_unreachable_listener_is_a_handshake_error():
    listener = NetListener("127.0.0.1:0", role="coordinator",
                           wire_version=5)
    address = listener.address
    listener.close()
    with pytest.raises(HandshakeError, match="cannot reach"):
        connect_worker(address, wire_version=5, timeout=1.0)
