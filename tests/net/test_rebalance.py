"""SlowestWorkerPolicy: interval deltas, thresholds, joiner priority."""

from __future__ import annotations

from repro.common.config import SimulationConfig
from repro.net.rebalance import SlowestWorkerPolicy, create_policy

MS = 1_000_000  # ns


def test_quiet_interval_never_triggers():
    policy = SlowestWorkerPolicy()
    assert policy.observe({0: 100, 1: 50}, loaded=[0, 1],
                          idle=[]) is None


def test_imbalance_over_threshold_drains_slowest_to_least_busy():
    policy = SlowestWorkerPolicy(threshold=4.0)
    assert policy.observe({0: MS, 1: MS}, loaded=[0, 1], idle=[]) is None
    decision = policy.observe({0: MS + 10 * MS, 1: MS + 2 * MS},
                              loaded=[0, 1], idle=[])
    assert decision == (0, 1)


def test_decisions_use_interval_deltas_not_cumulative_time():
    """A worker that *was* slow but recovered must not keep draining."""
    policy = SlowestWorkerPolicy(threshold=2.0)
    policy.observe({0: 100 * MS, 1: MS}, loaded=[0, 1], idle=[])
    # This interval worker 0 did almost nothing; cumulative time still
    # dwarfs worker 1's, but the delta does not.
    decision = policy.observe({0: 101 * MS, 1: 2 * MS},
                              loaded=[0, 1], idle=[])
    assert decision is None


def test_idle_joiner_absorbs_slowest_shard_unconditionally():
    policy = SlowestWorkerPolicy(threshold=1000.0)  # never by imbalance
    decision = policy.observe({0: 5 * MS, 1: 4 * MS},
                              loaded=[0, 1], idle=[2])
    assert decision == (0, 2)


def test_single_loaded_worker_without_joiner_holds():
    policy = SlowestWorkerPolicy()
    assert policy.observe({0: 50 * MS}, loaded=[0], idle=[]) is None


def test_create_policy_reads_config():
    cfg = SimulationConfig(num_tiles=4, seed=1)
    assert create_policy(cfg) is None
    cfg.distrib.rebalance = "slowest"
    cfg.distrib.rebalance_threshold = 2.5
    policy = create_policy(cfg)
    assert policy is not None and policy.threshold == 2.5
