"""The network fabric: traffic-class multiplexing and timestamps."""

import pytest

from repro.common.config import HostConfig, NetworkConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.host.cluster import ClusterLayout
from repro.network.interface import NetworkFabric
from repro.transport.message import MessageKind
from repro.transport.transport import Transport


@pytest.fixture
def fabric():
    layout = ClusterLayout(16, HostConfig())
    transport = Transport(layout)
    return NetworkFabric(16, NetworkConfig(), transport, StatGroup("net"))


class TestSend:
    def test_arrival_time_is_timestamp_plus_latency(self, fabric):
        message = fabric.send(TileId(0), TileId(15), MessageKind.USER,
                              size_bytes=64, timestamp=1000)
        assert message.arrival_time == 1000 + message.latency
        assert message.latency > 0

    def test_system_messages_have_zero_latency(self, fabric):
        message = fabric.send(TileId(0), TileId(15), MessageKind.SYSTEM,
                              size_bytes=64, timestamp=1000)
        assert message.latency == 0

    def test_message_lands_in_destination_queue(self, fabric):
        fabric.send(TileId(0), TileId(3), MessageKind.USER, payload="hi")
        got = fabric.transport.poll(TileId(3), MessageKind.USER)
        assert got.payload == "hi"

    def test_traffic_classes_use_own_models(self, fabric):
        fabric.send(TileId(0), TileId(1), MessageKind.USER)
        fabric.send(TileId(0), TileId(1), MessageKind.MEMORY)
        user = fabric.stats.child("user_net").counter("packets")
        memory = fabric.stats.child("memory_net").counter("packets")
        assert user.value == 1
        assert memory.value == 1


class TestTransfer:
    def test_transfer_returns_latency_without_enqueue(self, fabric):
        latency = fabric.transfer(TileId(0), TileId(15),
                                  MessageKind.MEMORY, 64, 0)
        assert latency > 0
        assert fabric.transport.total_pending() == 0

    def test_transfer_counts_in_model_stats(self, fabric):
        fabric.transfer(TileId(0), TileId(1), MessageKind.MEMORY, 64, 0)
        assert fabric.stats.child("memory_net").counter(
            "packets").value == 1


class TestInterface:
    def test_interface_send_and_poll(self, fabric):
        a = fabric.interface(TileId(0))
        b = fabric.interface(TileId(1))
        a.send(TileId(1), payload="ping", timestamp=10)
        got = b.poll(MessageKind.USER)
        assert got.payload == "ping"
        assert got.src == TileId(0)

    def test_interface_poll_match_tag(self, fabric):
        a = fabric.interface(TileId(0))
        b = fabric.interface(TileId(1))
        a.send(TileId(1), payload="x", tag=1)
        a.send(TileId(1), payload="y", tag=2)
        assert b.poll_match(MessageKind.USER, tag=2).payload == "y"

    def test_pending_count(self, fabric):
        a = fabric.interface(TileId(0))
        a.send(TileId(1), payload="x")
        assert fabric.interface(TileId(1)).pending(MessageKind.USER) == 1
