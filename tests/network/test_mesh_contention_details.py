"""Deeper behaviour of the analytical contention mesh."""


from repro.common.config import NetworkConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.network.model import create_network_model


def make(tiles=16, **overrides):
    config = NetworkConfig(**overrides)
    return create_network_model("mesh_contention", tiles, config,
                                StatGroup("n"))


class TestContention:
    def test_hot_link_saturates_only_its_route(self):
        model = make()
        # Saturate the 0 -> 1 link.
        for _ in range(30):
            model.route(TileId(0), TileId(1), 512, 1000)
        hot = model.route(TileId(0), TileId(1), 512, 1000)
        # A route using only distant links is unaffected.
        cold = model.route(TileId(10), TileId(11), 512, 1000)
        assert hot > 2 * cold

    def test_narrow_links_contend_harder(self):
        def total_latency(width):
            model = make(link_bytes_per_cycle=width)
            return sum(model.route(TileId(0), TileId(3), 512, 1000)
                       for _ in range(10))

        assert total_latency(2) > total_latency(16)

    def test_queues_drain_over_simulated_time(self):
        model = make()
        for _ in range(20):
            model.route(TileId(0), TileId(3), 512, 1000)
        loaded = model.route(TileId(0), TileId(3), 512, 1000)
        relaxed = model.route(TileId(0), TileId(3), 512, 500_000)
        assert relaxed < loaded

    def test_zero_distance_has_no_link_contention(self):
        model = make()
        first = model.route(TileId(5), TileId(5), 512, 1000)
        for _ in range(20):
            model.route(TileId(5), TileId(5), 512, 1000)
        again = model.route(TileId(5), TileId(5), 512, 1000)
        assert again == first  # no links traversed, nothing queues

    def test_per_link_clocks_lazy(self):
        model = make(tiles=64)
        model.route(TileId(0), TileId(1), 64, 0)
        # Only the links actually traversed were materialized.
        assert len(model._links) <= 2

    def test_shared_progress_window_scales_with_tiles(self):
        small = make(tiles=4)
        large = make(tiles=64)
        assert large.progress.window_size > small.progress.window_size
