"""Network models: magic, mesh, mesh with contention."""

import pytest

from repro.common.config import NetworkConfig
from repro.common.errors import ConfigError
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.network.mesh import serialization_cycles
from repro.network.model import create_network_model


def make(name, tiles=16, **overrides):
    config = NetworkConfig(**overrides)
    return create_network_model(name, tiles, config, StatGroup("net"))


class TestMagic:
    def test_zero_latency(self):
        model = make("magic")
        assert model.route(TileId(0), TileId(15), 64, 0) == 0

    def test_counts_packets(self):
        model = make("magic")
        model.route(TileId(0), TileId(1), 64, 0)
        assert model.stats.counter("packets").value == 1


class TestSerialization:
    def test_exact_multiple(self):
        assert serialization_cycles(64, 8) == 8

    def test_rounds_up(self):
        assert serialization_cycles(65, 8) == 9

    def test_zero_size(self):
        assert serialization_cycles(0, 8) == 0


class TestMesh:
    def test_latency_scales_with_hops(self):
        model = make("mesh")
        near = model.route(TileId(0), TileId(1), 8, 0)
        far = model.route(TileId(0), TileId(15), 8, 0)
        assert far > near

    def test_latency_formula(self):
        config = NetworkConfig(hop_latency=2, link_bytes_per_cycle=8,
                               endpoint_latency=3)
        model = create_network_model("mesh", 16, config, StatGroup("n"))
        # 0 -> 15 is 6 hops; 64B / 8Bpc = 8 cycles serialization.
        assert model.route(TileId(0), TileId(15), 64, 0) == \
            2 * 3 + 6 * 2 + 8

    def test_self_send_endpoint_only(self):
        model = make("mesh")
        latency = model.route(TileId(5), TileId(5), 8, 0)
        config = NetworkConfig()
        assert latency == 2 * config.endpoint_latency + \
            serialization_cycles(8, config.link_bytes_per_cycle)

    def test_larger_packets_slower(self):
        model = make("mesh")
        assert model.route(TileId(0), TileId(3), 512, 0) > \
            model.route(TileId(0), TileId(3), 8, 0)

    def test_mean_latency_stat(self):
        model = make("mesh")
        model.route(TileId(0), TileId(1), 8, 0)
        model.route(TileId(0), TileId(2), 8, 0)
        assert model.mean_latency > 0


class TestContentionMesh:
    def test_uncontended_matches_mesh_shape(self):
        plain = make("mesh")
        contended = make("mesh_contention")
        # A single packet sees serialization on each link but no queueing.
        p = plain.route(TileId(0), TileId(3), 64, 1000)
        c = contended.route(TileId(0), TileId(3), 64, 1000)
        assert c >= p  # per-link serialization counts per hop

    def test_contention_grows_latency(self):
        model = make("mesh_contention", tiles=16)
        first = model.route(TileId(0), TileId(3), 512, 1000)
        # Hammer the same route at the same timestamp: queues build up.
        for _ in range(20):
            model.route(TileId(0), TileId(3), 512, 1000)
        last = model.route(TileId(0), TileId(3), 512, 1000)
        assert last > first

    def test_disjoint_routes_do_not_contend(self):
        model = make("mesh_contention", tiles=16)
        base = model.route(TileId(0), TileId(1), 512, 1000)
        for _ in range(20):
            model.route(TileId(14), TileId(15), 512, 1000)
        # Later in simulated time (own queue drained), the far-away
        # traffic must not have inflated this route's latency.
        again = model.route(TileId(0), TileId(1), 512, 50_000)
        assert again <= base * 1.5

    def test_contention_counter(self):
        model = make("mesh_contention", tiles=16)
        for _ in range(10):
            model.route(TileId(0), TileId(3), 512, 1000)
        assert model.stats.counter("contention_cycles").value > 0


class TestRegistry:
    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            make("hypercube")

    @pytest.mark.parametrize("name",
                             ["magic", "mesh", "mesh_contention"])
    def test_all_registered(self, name):
        assert make(name).route(TileId(0), TileId(1), 8, 0) >= 0
