"""Mesh geometry and XY routing."""

import pytest

from repro.common.ids import TileId
from repro.network.routing import MeshGeometry


class TestGeometry:
    def test_square_grid(self):
        mesh = MeshGeometry(16)
        assert (mesh.width, mesh.height) == (4, 4)

    def test_non_square_counts(self):
        mesh = MeshGeometry(10)
        assert mesh.width * mesh.height >= 10

    def test_single_tile(self):
        mesh = MeshGeometry(1)
        assert mesh.distance(TileId(0), TileId(0)) == 0

    def test_coordinates_row_major(self):
        mesh = MeshGeometry(16)
        assert mesh.coordinates(TileId(0)) == (0, 0)
        assert mesh.coordinates(TileId(5)) == (1, 1)

    def test_out_of_range_tile(self):
        with pytest.raises(ValueError):
            MeshGeometry(4).coordinates(TileId(4))


class TestDistance:
    def test_manhattan(self):
        mesh = MeshGeometry(16)
        assert mesh.distance(TileId(0), TileId(15)) == 6  # (0,0)->(3,3)

    def test_symmetric(self):
        mesh = MeshGeometry(16)
        for a in range(16):
            for b in range(16):
                assert mesh.distance(TileId(a), TileId(b)) == \
                    mesh.distance(TileId(b), TileId(a))

    def test_neighbors_distance_one(self):
        mesh = MeshGeometry(16)
        for t in range(16):
            for n in mesh.neighbors(TileId(t)):
                assert mesh.distance(TileId(t), n) == 1


class TestRouting:
    def test_route_length_equals_distance(self):
        mesh = MeshGeometry(16)
        for a in range(16):
            for b in range(16):
                assert len(mesh.route(TileId(a), TileId(b))) == \
                    mesh.distance(TileId(a), TileId(b))

    def test_route_to_self_empty(self):
        assert MeshGeometry(16).route(TileId(5), TileId(5)) == []

    def test_xy_routes_deterministic(self):
        mesh = MeshGeometry(16)
        assert mesh.route(TileId(0), TileId(15)) == \
            mesh.route(TileId(0), TileId(15))

    def test_link_ids_unique_along_route(self):
        mesh = MeshGeometry(64)
        route = mesh.route(TileId(0), TileId(63))
        assert len(set(route)) == len(route)

    def test_opposite_routes_use_different_links(self):
        """Directed links: A->B and B->A never share a link id."""
        mesh = MeshGeometry(16)
        forward = set(mesh.route(TileId(0), TileId(15)))
        backward = set(mesh.route(TileId(15), TileId(0)))
        assert not forward & backward


class TestNeighbors:
    def test_corner_has_two(self):
        mesh = MeshGeometry(16)
        assert len(list(mesh.neighbors(TileId(0)))) == 2

    def test_centre_has_four(self):
        mesh = MeshGeometry(16)
        assert len(list(mesh.neighbors(TileId(5)))) == 4

    def test_neighbors_within_tile_count(self):
        mesh = MeshGeometry(10)  # ragged last row
        for t in range(10):
            for n in mesh.neighbors(TileId(t)):
                assert 0 <= int(n) < 10
