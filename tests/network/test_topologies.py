"""Ring and torus topologies."""

import pytest

from repro.common.config import NetworkConfig, SimulationConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.network.model import create_network_model
from repro.network.ring import RingNetworkModel, TorusNetworkModel


def make(name, tiles=16):
    return create_network_model(name, tiles, NetworkConfig(),
                                StatGroup("net"))


class TestRing:
    def test_registered(self):
        assert isinstance(make("ring"), RingNetworkModel)

    def test_takes_shorter_direction(self):
        ring = make("ring", tiles=16)
        assert ring.distance(TileId(0), TileId(15)) == 1
        assert ring.distance(TileId(0), TileId(8)) == 8
        assert ring.distance(TileId(2), TileId(5)) == 3

    def test_distance_symmetric(self):
        ring = make("ring", tiles=10)
        for a in range(10):
            for b in range(10):
                assert ring.distance(TileId(a), TileId(b)) == \
                    ring.distance(TileId(b), TileId(a))

    def test_worst_case_is_half_ring(self):
        ring = make("ring", tiles=16)
        worst = max(ring.distance(TileId(0), TileId(t))
                    for t in range(16))
        assert worst == 8

    def test_latency_grows_with_distance(self):
        ring = make("ring", tiles=16)
        near = ring.route(TileId(0), TileId(1), 8, 0)
        far = ring.route(TileId(0), TileId(8), 8, 0)
        assert far > near


class TestTorus:
    def test_registered(self):
        assert isinstance(make("torus"), TorusNetworkModel)

    def test_wraparound_shortens_corners(self):
        """Opposite corners: 6 hops on a 4x4 mesh, 2 on the torus."""
        mesh = make("mesh", tiles=16)
        torus = make("torus", tiles=16)
        mesh_latency = mesh.route(TileId(0), TileId(15), 8, 0)
        torus_latency = torus.route(TileId(0), TileId(15), 8, 0)
        assert torus_latency < mesh_latency
        assert torus.distance(TileId(0), TileId(15)) == 2

    def test_interior_distances_match_mesh(self):
        torus = make("torus", tiles=16)
        assert torus.distance(TileId(5), TileId(6)) == 1
        assert torus.distance(TileId(5), TileId(10)) == 2

    def test_distance_symmetric(self):
        torus = make("torus", tiles=16)
        for a in range(16):
            for b in range(16):
                assert torus.distance(TileId(a), TileId(b)) == \
                    torus.distance(TileId(b), TileId(a))

    def test_average_distance_below_mesh(self):
        from repro.network.routing import MeshGeometry
        geometry = MeshGeometry(64)
        torus = make("torus", tiles=64)
        mesh_total = torus_total = 0
        for a in range(64):
            for b in range(64):
                mesh_total += geometry.distance(TileId(a), TileId(b))
                torus_total += torus.distance(TileId(a), TileId(b))
        assert torus_total < mesh_total


class TestEndToEnd:
    @pytest.mark.parametrize("model", ["ring", "torus"])
    def test_full_simulation_on_topology(self, model):
        from repro.sim.simulator import Simulator
        from repro.workloads import get_workload

        config = SimulationConfig(num_tiles=8)
        config.network.memory_model = model
        config.network.user_model = model
        config.host.quantum_instructions = 300
        simulator = Simulator(config)
        result = simulator.run(
            get_workload("fft").main(nthreads=8, scale=0.15))
        simulator.engine.check_coherence_invariants()
        assert result.main_result is not None

    def test_config_accepts_new_models(self):
        config = SimulationConfig()
        config.network.memory_model = "torus"
        config.network.user_model = "ring"
        config.validate()
