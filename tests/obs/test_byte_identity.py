"""Observability is free: results are byte-identical with obs on/off.

The ISSUE's hardest acceptance criterion: spans, the flight-recorder
ring and the straggler watchdog are pure observers, so enabling all of
them must leave ``SimulationResult`` byte-identical on both execution
backends.
"""

from __future__ import annotations

from repro.common.config import SimulationConfig
from repro.distrib.wire import WorkloadRef
from repro.obs.spans import mint_trace_id
from repro.serve.store import canonical_result_bytes
from repro.sim.runner import create_simulator

REF = WorkloadRef("matrix_multiply", nthreads=4, scale=0.05)


def _config(backend: str, obs: bool, flight_dir=None,
            straggler: float = 0.0) -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=4, seed=23)
    cfg.host.quantum_instructions = 200
    # Identical simulated topology on both backends: only the host-side
    # execution strategy may differ.
    cfg.host.num_machines = 2
    cfg.host.cores_per_machine = 2
    cfg.distrib.backend = backend
    if obs:
        cfg.telemetry.enabled = True
        cfg.telemetry.events = ["obs"]
        cfg.telemetry.trace_id = mint_trace_id("job-identity-test")
        if flight_dir is not None:
            cfg.telemetry.flight_dir = str(flight_dir)
        if straggler:
            cfg.distrib.straggler_fraction = straggler
    cfg.validate()
    return cfg


def _run_bytes(cfg: SimulationConfig) -> bytes:
    return canonical_result_bytes(create_simulator(cfg).run(REF))


def test_inproc_result_identical_with_obs_on(tmp_path):
    off = _run_bytes(_config("inproc", obs=False))
    on = _run_bytes(_config("inproc", obs=True,
                            flight_dir=tmp_path / "fl"))
    assert on == off


def test_mp_result_identical_with_obs_on(tmp_path):
    off = _run_bytes(_config("mp", obs=False))
    on = _run_bytes(_config("mp", obs=True,
                            flight_dir=tmp_path / "fl",
                            straggler=0.5))
    assert on == off


def test_backends_agree_with_obs_on(tmp_path):
    assert _run_bytes(_config("inproc", obs=True)) == \
        _run_bytes(_config("mp", obs=True, flight_dir=tmp_path / "fl"))


def test_run_span_tree_is_recorded_inproc():
    """With obs on, the simulator's own run span is a well-formed
    single-trace tree rooted at the propagated trace id."""
    from repro.obs.spans import build_span_tree, orphan_spans
    cfg = _config("inproc", obs=True)
    simulator = create_simulator(cfg)
    simulator.run(REF)
    span_events = [e for e in simulator.telemetry.events
                   if e.name.startswith("span.")]
    assert span_events, "no span events recorded"
    tree = build_span_tree(span_events)
    assert tree["traces"] == [cfg.telemetry.trace_id]
    assert orphan_spans(span_events) == []
    (root,) = tree["roots"]
    assert tree["spans"][root]["op"] == "sim.run"
    assert tree["spans"][root]["outcome"] == "done"
