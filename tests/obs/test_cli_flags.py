"""The uniform observability flags across run/resume/serve/worker/top."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, telemetry_from_args


def _parse(argv):
    return build_parser().parse_args(argv)


class TestFlagUniformity:
    """Every long-running verb accepts the same four obs flags."""

    @pytest.mark.parametrize("argv", [
        ["run", "--workload", "fft"],
        ["resume", "ck"],
        ["serve", "--dir", "spool"],
        ["worker", "--connect", "host:1"],
    ])
    def test_verb_accepts_all_four_flags(self, argv):
        args = _parse(argv + ["--trace", "cache,network",
                              "--trace-out", "t.json",
                              "--metrics-interval", "5",
                              "--flight-dir", "fl"])
        assert args.trace == "cache,network"
        assert args.trace_out == "t.json"
        assert args.metrics_interval == 5
        assert args.flight_dir == "fl"

    def test_bare_trace_means_all_categories(self):
        args = _parse(["run", "--workload", "fft", "--trace"])
        assert args.trace == "all"

    def test_top_verb_parses(self):
        args = _parse(["top", "--dir", "spool", "--once"])
        assert args.command == "top"
        assert args.once is True
        assert args.interval == 2.0
        assert args.prom is False
        prom = _parse(["top", "--dir", "spool", "--prom"])
        assert prom.prom is True


class TestTelemetryFromArgs:
    def test_no_flags_means_none(self):
        args = _parse(["run", "--workload", "fft"])
        assert telemetry_from_args(args) is None

    def test_trace_categories_are_split(self):
        args = _parse(["run", "--workload", "fft",
                       "--trace", "cache, network"])
        telemetry = telemetry_from_args(args)
        assert telemetry.enabled
        assert telemetry.events == ["cache", "network"]

    def test_trace_out_alone_enables_with_defaults(self):
        args = _parse(["serve", "--dir", "spool",
                       "--trace-out", "ops.jsonl"])
        telemetry = telemetry_from_args(
            args, default_events=["serve", "obs"])
        assert telemetry.enabled
        assert telemetry.events == ["serve", "obs"]
        assert telemetry.trace_path == "ops.jsonl"

    def test_metrics_interval_implies_tracing(self):
        args = _parse(["run", "--workload", "fft",
                       "--metrics-interval", "10"])
        telemetry = telemetry_from_args(args)
        assert telemetry.enabled
        assert telemetry.metrics_interval == 10

    def test_flight_dir_alone_arms_without_enabling(self):
        """The mask-0 ring: forensics without recording a trace."""
        args = _parse(["run", "--workload", "fft",
                       "--flight-dir", "fl"])
        telemetry = telemetry_from_args(args)
        assert telemetry is not None
        assert telemetry.flight_dir == "fl"
        assert telemetry.enabled is False

    def test_flight_dir_composes_with_tracing(self):
        args = _parse(["run", "--workload", "fft", "--trace",
                       "--flight-dir", "fl"])
        telemetry = telemetry_from_args(args)
        assert telemetry.enabled
        assert telemetry.flight_dir == "fl"

    def test_bad_category_is_rejected(self):
        args = _parse(["run", "--workload", "fft",
                       "--trace", "not-a-category"])
        with pytest.raises(Exception):
            telemetry_from_args(args)


class TestStandaloneTraceIdentity:
    """``run --trace obs`` mints a trace id so the run span arms.

    Served jobs get their identity from the daemon at submit; a
    standalone CLI run has no daemon, so ``_configure`` mints one
    deterministically from the semantic config.
    """

    def _config(self, argv):
        from repro.cli import _configure
        return _configure(_parse(argv))

    def test_obs_tracing_mints_a_deterministic_trace_id(self):
        argv = ["run", "--workload", "fft", "--trace", "obs"]
        first = self._config(argv).telemetry.trace_id
        again = self._config(argv).telemetry.trace_id
        assert first and first == again
        assert len(first) == 16

    def test_trace_id_varies_with_the_semantic_config(self):
        base = self._config(
            ["run", "--workload", "fft", "--trace", "obs"])
        other = self._config(
            ["run", "--workload", "fft", "--seed", "99",
             "--trace", "obs"])
        assert base.telemetry.trace_id != other.telemetry.trace_id

    def test_non_obs_tracing_stays_untraced(self):
        config = self._config(
            ["run", "--workload", "fft", "--trace", "cache"])
        assert config.telemetry.trace_id == ""
