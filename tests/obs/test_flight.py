"""The crash flight recorder: bounded ring, atomic dumps, bus observer.

The recorder's contract has two halves: forensics (the last N events
and wire-frame summaries survive into a JSON bundle) and invisibility
(riding the bus as an observer records nothing — the exported trace
and the simulated result are byte-identical with the ring armed).
"""

from __future__ import annotations

import json
import os

from repro.obs.flight import (
    FLIGHT_FORMAT,
    FlightRecorder,
    event_to_dict,
    load_bundles,
)
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import ALL_CATEGORIES, EventCategory


def _armed_bus(mask: int = ALL_CATEGORIES):
    """A bus with a recorder observing every category.

    Observers must attach before channels resolve — the same order the
    daemon, simulator and worker use."""
    bus = TelemetryBus(mask)
    recorder = FlightRecorder()
    bus.observe(recorder.on_event, ALL_CATEGORIES)
    return bus, recorder, bus.channel(EventCategory.WORKER)


class TestRing:
    def test_capacity_bounds_the_event_ring(self):
        recorder = FlightRecorder(capacity=4)
        for n in range(10):
            recorder.on_event(n)
        assert list(recorder.events) == [6, 7, 8, 9]

    def test_frame_ring_is_bounded_separately(self):
        recorder = FlightRecorder(capacity=2, frame_capacity=3)
        for n in range(5):
            recorder.note_frame("send", "worker0", "RUN_QUANTUM", n)
        assert len(recorder.frames) == 3
        assert [frame["bytes"] for frame in recorder.frames] == [2, 3, 4]

    def test_frame_summary_shape_never_holds_payloads(self):
        recorder = FlightRecorder()
        recorder.note_frame("recv", 3, "QUANTUM_DONE", 1234)
        assert recorder.frames[0] == {"dir": "recv", "peer": "3",
                                      "kind": "QUANTUM_DONE",
                                      "bytes": 1234}


class TestBusObserver:
    def test_mask_zero_bus_records_nothing_but_feeds_the_ring(self):
        """The zero-overhead-when-disabled half: a mask-0 bus stays
        empty (no store, no seq) while the ring still sees events."""
        bus, recorder, channel = _armed_bus(mask=0)
        assert channel is not None  # observer mask keeps it resolvable
        channel.emit("quantum.start", None, 100, {"turn": 1})
        assert bus.events == []
        assert bus._seq == 0
        assert [event.name for event in recorder.events] == [
            "quantum.start"]

    def test_enabled_bus_feeds_store_and_ring_alike(self):
        bus, recorder, channel = _armed_bus()
        channel.emit("worker.spawned", None, 0, {"worker": 1})
        assert [event.name for event in bus.events] == ["worker.spawned"]
        assert [event.name for event in recorder.events] == [
            "worker.spawned"]


class TestBundles:
    def test_dump_and_load_round_trip(self, tmp_path):
        bus, recorder, channel = _armed_bus(mask=0)
        channel.emit("quantum.start", 2, 500, {"turn": 7})
        recorder.note_frame("send", "worker0", "CHECKPOINT", 99)
        path = recorder.dump(str(tmp_path), "worker.died",
                             detail="worker 0 died",
                             extra={"worker": 0})
        assert os.path.basename(path).startswith(
            f"flight-{os.getpid()}-")
        (bundle,) = load_bundles(str(tmp_path))
        assert bundle["format"] == FLIGHT_FORMAT
        assert bundle["reason"] == "worker.died"
        assert bundle["detail"] == "worker 0 died"
        assert bundle["extra"] == {"worker": 0}
        assert bundle["pid"] == os.getpid()
        (event,) = bundle["events"]
        assert event["name"] == "quantum.start"
        assert event["tile"] == 2 and event["t"] == 500
        assert event["args"] == {"turn": 7}
        assert bundle["frames"] == [{"dir": "send", "peer": "worker0",
                                     "kind": "CHECKPOINT", "bytes": 99}]

    def test_successive_dumps_get_distinct_names(self, tmp_path):
        recorder = FlightRecorder()
        first = recorder.dump(str(tmp_path), "one")
        second = recorder.dump(str(tmp_path), "two")
        assert first != second
        assert recorder.dumped == [first, second]
        assert [b["reason"] for b in load_bundles(str(tmp_path))] == [
            "one", "two"]

    def test_dump_is_atomic_no_tmp_left_behind(self, tmp_path):
        FlightRecorder().dump(str(tmp_path), "crash")
        names = os.listdir(tmp_path)
        assert len(names) == 1
        assert not any(name.endswith(".tmp") for name in names)

    def test_dump_creates_the_directory(self, tmp_path):
        target = tmp_path / "deep" / "flight"
        FlightRecorder().dump(str(target), "crash")
        assert len(load_bundles(str(target))) == 1

    def test_load_bundles_on_missing_dir_is_empty(self, tmp_path):
        assert load_bundles(str(tmp_path / "nope")) == []

    def test_unjsonable_args_degrade_to_str(self, tmp_path):
        """``default=str`` in the dump: forensics never crash the
        crash handler over an exotic event payload."""
        bus, recorder, channel = _armed_bus(mask=0)
        channel.emit("weird", None, 0, {"obj": object()})
        path = recorder.dump(str(tmp_path), "crash")
        with open(path, encoding="utf-8") as handle:
            bundle = json.load(handle)
        assert "object object" in bundle["events"][0]["args"]["obj"]

    def test_event_to_dict_mirrors_jsonl_fields(self):
        bus, recorder, channel = _armed_bus()
        channel.emit("x", 1, 2, {"k": "v"})
        (event,) = bus.events
        assert event_to_dict(event) == {
            "cat": "worker", "name": "x", "tile": 1, "t": 2,
            "args": {"k": "v"}, "seq": 0, "origin": event.origin}
