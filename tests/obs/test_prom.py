"""Prometheus text exposition rendering for the metrics endpoint."""

from __future__ import annotations

from repro.obs.prom import (
    fleet_families,
    render_fleet_metrics,
    render_prometheus,
)

#: A snapshot in the exact shape the daemon's ``metrics_fields()``
#: takes *after* a JSON round-trip — mapping keys are strings, the
#: shape ``repro top`` and remote scrapers actually see.
FIELDS = {
    "uptime_seconds": 12.5,
    "queue_depth": 3,
    "jobs": {"done": 4, "running": 1},
    "submitted": 6,
    "cache_hits": 1,
    "preemptions": 2,
    "worker_deaths": 0,
    "workers": {"busy": 1, "idle": 1},
    "wait_seconds": {"0": {"total": 1.5, "count": 3},
                     "5": {"total": 0.25, "count": 1}},
    "worker_busy_seconds": {"0": 9.75, "1": 2.0},
    "worker_jobs": {"0": 4, "1": 1},
}


class TestRenderer:
    def test_help_type_and_samples(self):
        text = render_prometheus([{
            "name": "x_total", "type": "counter", "help": "Things.",
            "samples": [({}, 7)]}])
        assert text == ("# HELP x_total Things.\n"
                        "# TYPE x_total counter\n"
                        "x_total 7\n")

    def test_labels_are_sorted_and_escaped(self):
        text = render_prometheus([{
            "name": "x", "samples": [
                ({"b": 'say "hi"', "a": "line\nbreak"}, 1)]}])
        assert ('x{a="line\\nbreak",b="say \\"hi\\""} 1' in text)

    def test_value_formatting(self):
        text = render_prometheus([{"name": "x", "samples": [
            ({"k": "i"}, 3), ({"k": "f"}, 2.5), ({"k": "b"}, True)]}])
        assert 'x{k="i"} 3' in text
        assert 'x{k="f"} 2.5' in text
        assert 'x{k="b"} 1' in text

    def test_type_defaults_to_gauge(self):
        assert "# TYPE x gauge" in render_prometheus(
            [{"name": "x", "samples": []}])

    def test_output_ends_with_newline(self):
        assert render_prometheus([]).endswith("\n")


class TestFleetFamilies:
    def test_every_family_renders_even_when_empty(self):
        """A freshly started daemon (no jobs yet) still exposes the
        full metric vocabulary, so dashboards never see gaps."""
        text = render_fleet_metrics({})
        for name in ("repro_serve_uptime_seconds",
                     "repro_serve_queue_depth",
                     "repro_serve_jobs",
                     "repro_serve_submitted_total",
                     "repro_serve_cache_hits_total",
                     "repro_serve_preemptions_total",
                     "repro_serve_worker_deaths_total",
                     "repro_serve_workers",
                     "repro_serve_wait_seconds_total",
                     "repro_serve_wait_jobs_total",
                     "repro_serve_worker_busy_seconds_total",
                     "repro_serve_worker_jobs_total"):
            assert f"# TYPE {name} " in text

    def test_wire_shape_fields_render(self):
        text = render_fleet_metrics(FIELDS)
        assert "repro_serve_queue_depth 3" in text
        assert 'repro_serve_jobs{state="done"} 4' in text
        assert 'repro_serve_jobs{state="running"} 1' in text
        assert "repro_serve_submitted_total 6" in text
        assert "repro_serve_cache_hits_total 1" in text
        assert 'repro_serve_workers{state="busy"} 1' in text
        assert 'repro_serve_wait_seconds_total{priority="0"} 1.5' in text
        assert 'repro_serve_wait_jobs_total{priority="5"} 1' in text
        assert 'repro_serve_worker_busy_seconds_total{worker="0"} 9.75' \
            in text
        assert 'repro_serve_worker_jobs_total{worker="1"} 1' in text

    def test_counters_and_gauges_are_typed_correctly(self):
        by_name = {family["name"]: family
                   for family in fleet_families(FIELDS)}
        assert by_name["repro_serve_queue_depth"]["type"] == "gauge"
        assert by_name["repro_serve_workers"]["type"] == "gauge"
        for name, family in by_name.items():
            if name.endswith("_total"):
                assert family["type"] == "counter", name
