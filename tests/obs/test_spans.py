"""Deterministic span identity and tree reconstruction.

The tracing layer must stay deterministic (id minting never touches a
clock or RNG), observational (a ``None`` channel mints identical ids),
and reconstructable from either live events or decoded JSONL dicts.
"""

from __future__ import annotations

from repro.obs.spans import (
    SpanEmitter,
    build_span_tree,
    mint_trace_id,
    orphan_spans,
    span_id,
    span_records,
)
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import ALL_CATEGORIES, EventCategory


def _channel():
    bus = TelemetryBus(ALL_CATEGORIES)
    return bus, bus.channel(EventCategory.OBS)


class TestIds:
    def test_trace_id_is_deterministic(self):
        assert mint_trace_id("job-1", "key") == mint_trace_id(
            "job-1", "key")

    def test_trace_id_is_16_hex_chars(self):
        tid = mint_trace_id("job-1")
        assert len(tid) == 16
        int(tid, 16)  # raises if not hex

    def test_distinct_parts_distinct_ids(self):
        assert mint_trace_id("job-1") != mint_trace_id("job-2")
        # The separator keeps ("ab", "c") and ("a", "bc") apart.
        assert mint_trace_id("ab", "c") != mint_trace_id("a", "bc")

    def test_span_id_varies_with_serial(self):
        tid = mint_trace_id("job-1")
        assert span_id(tid, "run", 1) != span_id(tid, "run", 2)
        assert span_id(tid, "run", 1) == span_id(tid, "run", 1)


class TestEmitter:
    def test_none_channel_mints_identical_ids(self):
        """Telemetry off must not change span identity: the ids a
        silent emitter propagates match the recorded run exactly."""
        tid = mint_trace_id("job-7")
        _, channel = _channel()
        loud = SpanEmitter(channel, tid)
        quiet = SpanEmitter(None, tid)
        for emitter in (loud, quiet):
            root = emitter.begin("job")
            child = emitter.begin("queue", parent=root)
            emitter.end(child, "queue")
            emitter.end(root, "job", outcome="done")
        assert loud._serial == quiet._serial
        assert (span_id(tid, "job", 1) ==
                SpanEmitter(None, tid).begin("job"))

    def test_event_shapes(self):
        bus, channel = _channel()
        emitter = SpanEmitter(channel, mint_trace_id("job-1"))
        root = emitter.begin("job", job="job-1")
        emitter.note(root, "preempt.request", worker=2)
        emitter.end(root, "job", outcome="done")
        names = [event.name for event in bus.events]
        assert names == ["span.begin", "span.note", "span.end"]
        begin, note, end = (event.args for event in bus.events)
        assert begin["span"] == root and begin["parent"] == ""
        assert begin["op"] == "job" and begin["job"] == "job-1"
        assert note["note"] == "preempt.request" and note["worker"] == 2
        assert end["outcome"] == "done"
        assert {event.args["trace"] for event in bus.events} == {
            emitter.trace_id}

    def test_emitter_level_parent_is_the_default(self):
        bus, channel = _channel()
        emitter = SpanEmitter(channel, mint_trace_id("j"), parent="abcd")
        emitter.begin("run")
        emitter.begin("run", parent="")
        first, second = (event.args for event in bus.events)
        assert first["parent"] == "abcd"
        assert second["parent"] == ""


class TestReconstruction:
    def _job_events(self):
        bus, channel = _channel()
        emitter = SpanEmitter(channel, mint_trace_id("job-1"))
        root = emitter.begin("job")
        queue = emitter.begin("queue", parent=root)
        emitter.end(queue, "queue")
        run = emitter.begin("run", parent=root, worker=0)
        emitter.note(run, "preempt.request")
        emitter.end(run, "run", outcome="preempted")
        requeue = emitter.begin("queue", parent=root, resumed=True)
        emitter.end(requeue, "queue")
        rerun = emitter.begin("run", parent=root, worker=1,
                              resumed=True)
        emitter.end(rerun, "run", outcome="done")
        emitter.end(root, "job", outcome="done")
        return bus.events, root, run

    def test_records_fold_ends_and_notes(self):
        events, root, run = self._job_events()
        spans = span_records(events)
        assert spans[root]["outcome"] == "done"
        assert spans[run]["outcome"] == "preempted"
        assert spans[run]["notes"][0]["note"] == "preempt.request"
        assert all(record["ended"] for record in spans.values())

    def test_tree_is_connected_single_trace(self):
        events, root, _ = self._job_events()
        tree = build_span_tree(events)
        assert tree["roots"] == [root]
        assert len(tree["traces"]) == 1
        assert len(tree["children"][root]) == 4
        assert orphan_spans(events) == []

    def test_orphans_are_detected(self):
        bus, channel = _channel()
        emitter = SpanEmitter(channel, mint_trace_id("job-1"))
        sid = emitter.begin("run", parent="feedfacedeadbeef")
        assert orphan_spans(bus.events) == [sid]
        # An orphan is also a root candidate: its parent is absent.
        assert build_span_tree(bus.events)["roots"] == [sid]

    def test_reconstruction_from_decoded_dicts(self):
        """JSONL round-trip: dicts and live events reconstruct alike."""
        events, _, _ = self._job_events()
        dicts = [{"name": event.name, "args": dict(event.args)}
                 for event in events]
        assert span_records(dicts) == span_records(events)
        assert build_span_tree(dicts) == build_span_tree(events)

    def test_unended_span_has_no_outcome(self):
        bus, channel = _channel()
        emitter = SpanEmitter(channel, mint_trace_id("j"))
        sid = emitter.begin("run")
        record = span_records(bus.events)[sid]
        assert record["ended"] is False
        assert record["outcome"] is None

    def test_end_and_note_for_unknown_span_are_ignored(self):
        dicts = [{"name": "span.end", "args": {"span": "nope"}},
                 {"name": "span.note", "args": {"span": "nope"}},
                 {"name": "other.event", "args": {}}]
        assert span_records(dicts) == {}
