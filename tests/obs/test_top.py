"""``repro top`` rendering and its failure mode without a daemon."""

from __future__ import annotations

import io

from repro.obs.top import _rate, render_fields, run_top

FIELDS = {
    "uptime_seconds": 42.0,
    "queue_depth": 2,
    "jobs": {"done": 3, "running": 1},
    "submitted": 4,
    "cache_hits": 1,
    "preemptions": 1,
    "worker_deaths": 0,
    "workers": {"busy": 1, "idle": 1},
    "wait_seconds": {"0": {"total": 1.0, "count": 2}},
    "worker_busy_seconds": {"0": 3.5},
    "worker_jobs": {"0": 3},
}


class TestRate:
    def test_zero_total_is_a_dash(self):
        assert _rate(0, 0) == "-"

    def test_percentage(self):
        assert _rate(1, 4) == "25%"


class TestRenderFields:
    def test_frame_carries_the_fleet_story(self):
        frame = render_fields(FIELDS)
        assert "up 42s" in frame
        assert "workers 1 busy / 1 idle" in frame
        assert "queue depth 2" in frame
        assert "cache hits 1 (25%)" in frame
        assert "preemptions 1" in frame
        assert "done=3" in frame and "running=1" in frame
        assert "prio 0: 2 jobs, mean wait 0.50s" in frame
        assert "worker 0: 3 jobs, busy 3.5s" in frame

    def test_empty_fields_render_a_minimal_frame(self):
        frame = render_fields({})
        assert "repro serve fleet" in frame
        assert "queue depth 0" in frame


class TestRunTop:
    def test_unreachable_daemon_fails_cleanly(self, tmp_path):
        out = io.StringIO()
        code = run_top(str(tmp_path / "no-such.sock"), once=True,
                       out=out)
        assert code == 1
        assert "repro top:" in out.getvalue()
        assert "cannot reach serve daemon" in out.getvalue()
