"""The straggler watchdog under steady state and elastic membership.

Interval-delta discipline is the whole game: first sight is a
baseline, recovered workers stop warning, and membership churn
(joins, drains, counter resets after migration) never fabricates a
straggler.
"""

from __future__ import annotations

from repro.obs.watchdog import StragglerWatchdog, _median
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import ALL_CATEGORIES, EventCategory

#: 10ms in ns — comfortably above the default noise floor.
TICK = 10_000_000


def _watchdog(fraction: float = 0.5, channel=None) -> StragglerWatchdog:
    return StragglerWatchdog(channel, fraction)


class TestMedian:
    def test_odd_and_even_counts(self):
        assert _median([3, 1, 2]) == 2
        assert _median([4, 1, 3, 2]) == 3
        assert _median([7]) == 7


class TestSteadyState:
    def test_first_observation_is_baseline_only(self):
        dog = _watchdog()
        assert dog.observe({0: 50 * TICK, 1: 50 * TICK}) == []
        assert dog.warnings == []

    def test_slow_worker_is_flagged_on_the_interval(self):
        dog = _watchdog(fraction=0.5)
        dog.observe({0: 0, 1: 0, 2: 0})
        # Deltas 1, 1, 3 ticks: median 1 < 0.5 * 3 — worker 2 runs at
        # a third of the median rate, below the 50% floor.
        flagged = dog.observe({0: TICK, 1: TICK, 2: 3 * TICK}, turn=8)
        assert flagged == [2]
        (warning,) = dog.warnings
        assert warning["worker"] == 2
        assert warning["busy_ns"] == 3 * TICK
        assert warning["median_ns"] == TICK
        assert warning["turn"] == 8
        assert warning["level"] == "warn"

    def test_uniform_fleet_never_warns(self):
        dog = _watchdog(fraction=0.5)
        totals = {0: 0, 1: 0, 2: 0}
        for _ in range(5):
            totals = {w: t + TICK for w, t in totals.items()}
            assert dog.observe(totals) == []

    def test_recovered_worker_stops_warning(self):
        """Interval deltas, not cumulative totals: a worker that was
        slow once but caught up is clean on the next observation."""
        dog = _watchdog(fraction=0.5)
        dog.observe({0: 0, 1: 0, 2: 0})
        assert dog.observe({0: TICK, 1: TICK, 2: 3 * TICK}) == [2]
        # Worker 2's *cumulative* total stays the largest, but its
        # interval now matches the fleet.
        assert dog.observe({0: 2 * TICK, 1: 2 * TICK,
                            2: 4 * TICK}) == []

    def test_noise_floor_suppresses_tiny_intervals(self):
        dog = _watchdog(fraction=0.5)
        dog.observe({0: 0, 1: 0, 2: 0})
        # All deltas below min_busy_ns: fewer than two measured, no
        # verdict at all.
        assert dog.observe({0: 10, 1: 10, 2: 500}) == []

    def test_single_worker_has_no_fleet_to_lag(self):
        dog = _watchdog(fraction=0.5)
        dog.observe({0: 0})
        assert dog.observe({0: 5 * TICK}) == []


class TestElasticMembership:
    def test_joiner_only_establishes_a_baseline(self):
        """A worker adopting its first shard mid-run shows a huge
        cumulative total; first sight must not flag it."""
        dog = _watchdog(fraction=0.5)
        dog.observe({0: 0, 1: 0})
        dog.observe({0: TICK, 1: TICK})
        flagged = dog.observe({0: 2 * TICK, 1: 2 * TICK,
                               2: 90 * TICK})
        assert flagged == []
        # Once it has an interval of its own it is judged like anyone.
        assert dog.observe({0: 3 * TICK, 1: 3 * TICK,
                            2: 95 * TICK}) == [2]

    def test_drained_worker_simply_disappears(self):
        dog = _watchdog(fraction=0.5)
        dog.observe({0: 0, 1: 0, 2: 0})
        dog.observe({0: TICK, 1: TICK, 2: TICK})
        # Worker 2 drained away: the remaining fleet is judged alone.
        assert dog.observe({0: 2 * TICK, 1: 2 * TICK}) == []

    def test_counter_reset_after_rejoin_is_not_a_straggler(self):
        """A worker re-appearing with a reset counter produces a
        negative delta — below the noise floor, silently ignored."""
        dog = _watchdog(fraction=0.5)
        dog.observe({0: 50 * TICK, 1: 50 * TICK, 2: 50 * TICK})
        flagged = dog.observe({0: 51 * TICK, 1: 51 * TICK, 2: TICK})
        assert flagged == []


class TestTelemetry:
    def test_warning_emits_an_obs_event(self):
        bus = TelemetryBus(ALL_CATEGORIES)
        dog = _watchdog(fraction=0.5,
                        channel=bus.channel(EventCategory.OBS))
        dog.observe({0: 0, 1: 0, 2: 0})
        dog.observe({0: TICK, 1: TICK, 2: 3 * TICK}, turn=4)
        (event,) = bus.events
        assert event.name == "straggler.warn"
        assert event.category_name == "obs"
        assert event.args["worker"] == 2
        assert event.args["turn"] == 4

    def test_none_channel_still_accumulates_warnings(self):
        """Snapshot-safe: channels are excised across checkpoints, the
        watchdog keeps judging and recording without one."""
        dog = _watchdog(fraction=0.5, channel=None)
        dog.observe({0: 0, 1: 0, 2: 0})
        assert dog.observe({0: TICK, 1: TICK, 2: 3 * TICK}) == [2]
        assert len(dog.warnings) == 1
