"""Bench trajectory runner: schema, baseline check, CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.profile.bench import (
    BENCH_SCHEMA,
    BENCHMARKS,
    QUICK_COUNT,
    build_trajectory,
    check_baseline,
    run_benchmark,
)


def _row(rate: float) -> dict:
    return {"cycles_per_host_second": rate}


def _trajectory(**rates) -> dict:
    return build_trajectory(
        "full", {name: _row(rate) for name, rate in rates.items()})


class TestCheckBaseline:
    def test_within_tolerance_passes(self):
        base = _trajectory(fft=300_000.0)
        fresh = _trajectory(fft=150_000.0)  # 2x slower, tolerance 3x
        assert check_baseline(base, fresh, tolerance=3.0) == []

    def test_regression_beyond_tolerance_fails(self):
        base = _trajectory(fft=300_000.0, fmm=100_000.0)
        fresh = _trajectory(fft=50_000.0, fmm=90_000.0)  # fft 6x slower
        problems = check_baseline(base, fresh, tolerance=3.0)
        assert len(problems) == 1
        assert problems[0].startswith("fft:")
        assert "slower than the baseline" in problems[0]

    def test_speedup_never_fails(self):
        base = _trajectory(fft=100_000.0)
        fresh = _trajectory(fft=900_000.0)
        assert check_baseline(base, fresh) == []

    def test_benchmarks_missing_from_baseline_are_skipped(self):
        base = _trajectory(fft=100_000.0)
        fresh = _trajectory(fft=100_000.0, fmm=1.0)
        assert check_baseline(base, fresh) == []

    def test_schema_mismatch_is_reported(self):
        stale = {"schema": "repro.bench_host_profile/0",
                 "benchmarks": {}}
        problems = check_baseline(stale, _trajectory(fft=1.0))
        assert len(problems) == 1
        assert "--accept-baseline" in problems[0]


def test_bench_set_has_at_least_five_benchmarks():
    assert len(BENCHMARKS) >= 5
    assert QUICK_COUNT >= 5


def test_run_benchmark_record_shape():
    record = run_benchmark("fft", scale=0.1, tiles=4)
    assert record["workload"] == "fft"
    assert record["host_wall_seconds"] > 0
    assert record["cycles_per_host_second"] > 0
    assert record["achieved_slowdown"] > 0
    assert record["simulated_cycles"] > 0
    assert record["top_subsystems"]


@pytest.fixture
def quick_args(tmp_path):
    out = tmp_path / "BENCH_host_profile.json"
    return out, ["bench", "--quick", "--tiles", "4", "--scale", "0.05",
                 "--out", str(out), "--baseline", str(out)]


def test_bench_cli_writes_versioned_trajectory(quick_args, capsys):
    out, argv = quick_args
    assert main(argv) == 0
    trajectory = json.loads(out.read_text())
    assert trajectory["schema"] == BENCH_SCHEMA
    assert trajectory["mode"] == "quick"
    assert len(trajectory["benchmarks"]) == QUICK_COUNT
    for record in trajectory["benchmarks"].values():
        assert record["host_wall_seconds"] > 0
        assert record["cycles_per_host_second"] > 0


def test_bench_cli_check_against_own_baseline_passes(quick_args,
                                                     capsys):
    out, argv = quick_args
    assert main(argv) == 0  # record the baseline
    assert main(argv + ["--check-baseline"]) == 0
    assert "within" in capsys.readouterr().out


def test_bench_cli_detects_regression(quick_args, capsys):
    out, argv = quick_args
    assert main(argv) == 0
    # Forge a baseline claiming this host used to be 1000x faster.
    trajectory = json.loads(out.read_text())
    for record in trajectory["benchmarks"].values():
        record["cycles_per_host_second"] *= 1000.0
    out.write_text(json.dumps(trajectory))
    assert main(argv + ["--check-baseline"]) == 1
    assert "REGRESSION" in capsys.readouterr().err


def test_bench_cli_missing_baseline_is_actionable(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    code = main(["bench", "--quick", "--tiles", "4", "--scale", "0.05",
                 "--out", str(tmp_path / "out.json"),
                 "--baseline", str(missing), "--check-baseline"])
    assert code == 1
    assert "--accept-baseline" in capsys.readouterr().err
