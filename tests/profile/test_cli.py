"""CLI surfacing of host profiling: ``--profile``, ``repro profile``."""

from __future__ import annotations

import json

from repro.cli import main

RUN = ["run", "--workload", "fmm", "--tiles", "4", "--scale", "0.1"]


def test_run_without_profile_prints_no_profile(capsys):
    assert main(RUN) == 0
    assert "host wall time" not in capsys.readouterr().out


def test_run_profile_flag_text_output(capsys):
    assert main(RUN + ["--profile"]) == 0
    out = capsys.readouterr().out
    assert "host wall time:" in out
    assert "subsystem self-times:" in out
    assert "achieved slowdown:" in out


def test_run_profile_flag_json_output(capsys):
    assert main(RUN + ["--profile", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    profile = payload["host_profile"]
    assert profile["schema"] == "repro.host_profile/1"
    assert profile["rates"]["cycles_per_host_second"] > 0
    # The simulation metrics in the payload stay profile-independent.
    assert payload["simulated_cycles"] == profile["rates"][
        "simulated_cycles"]


def test_profile_subcommand_text(capsys):
    code = main(["profile", "fmm", "--tiles", "4", "--scale", "0.1",
                 "--top", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "host wall time:" in out
    assert "subsystem self-times:" in out


def test_profile_subcommand_json_and_report_file(tmp_path, capsys):
    report = tmp_path / "profile.json"
    code = main(["profile", "fmm", "--tiles", "4", "--scale", "0.1",
                 "--json", "--out", str(report)])
    assert code == 0
    printed = json.loads(capsys.readouterr().out)
    saved = json.loads(report.read_text())
    assert printed == saved
    assert saved["workload"] == "fmm"
    assert saved["schema"] == "repro.host_profile/1"


def test_profile_subcommand_chrome_trace(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    code = main(["profile", "fmm", "--tiles", "4", "--scale", "0.1",
                 "--trace-out", str(trace)])
    assert code == 0
    payload = json.loads(trace.read_text())
    from repro.telemetry.chrome import HOST_PID
    pids = {r.get("pid") for r in payload["traceEvents"]}
    assert HOST_PID in pids  # host tracks ...
    assert 0 in pids         # ... next to target-time tracks
