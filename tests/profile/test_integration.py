"""End-to-end profiling: non-perturbation, attribution, mp merge.

The contract that matters most: profiling is *purely observational*.
A profiled run must produce byte-identical simulation metrics to an
unprofiled one, on both backends.
"""

from __future__ import annotations

import pytest

from repro.common.config import SimulationConfig
from repro.distrib.wire import WorkloadRef
from repro.profile.report import PROFILE_SCHEMA
from repro.sim.runner import create_simulator

REF = WorkloadRef("fft", 4, 0.1)


def _config(backend: str, profiled: bool) -> SimulationConfig:
    config = SimulationConfig(num_tiles=4, seed=42)
    config.host.num_machines = 2
    config.host.cores_per_machine = 2
    config.distrib.backend = backend
    config.profile.enabled = profiled
    config.validate()
    return config


def _run(backend: str, profiled: bool):
    simulator = create_simulator(_config(backend, profiled))
    result = simulator.run(REF)
    return simulator, result


def _fingerprint(result):
    return (result.simulated_cycles, result.parallel_cycles,
            result.total_instructions, result.wall_clock_seconds,
            result.native_seconds, dict(sorted(result.counters.items())))


@pytest.mark.parametrize("backend", ["inproc", "mp"])
def test_profiling_never_perturbs_results(backend):
    _, plain = _run(backend, profiled=False)
    _, profiled = _run(backend, profiled=True)
    assert _fingerprint(plain) == _fingerprint(profiled)


def test_unprofiled_run_collects_nothing():
    simulator, _ = _run("inproc", profiled=False)
    assert simulator.profiler is None
    assert simulator.host_profile is None


def test_inproc_profile_attributes_subsystems():
    simulator, result = _run("inproc", profiled=True)
    profile = simulator.host_profile
    assert profile is not None
    assert profile["schema"] == PROFILE_SCHEMA
    assert profile["backend"] == "inproc"
    assert profile["host_wall_seconds"] > 0
    subsystems = profile["subsystems"]
    for scope in ("scheduler.quantum", "frontend.interpret",
                  "core.model", "memory.controller", "network.fabric",
                  "sync.model"):
        assert scope in subsystems, scope
        assert subsystems[scope]["calls"] > 0
    # The scheduler scope encloses the others, so its cumulative time
    # dominates everyone's self time.
    sched_cum = subsystems["scheduler.quantum"]["cum_seconds"]
    assert all(row["self_seconds"] <= sched_cum + 1e-9
               for row in subsystems.values())
    assert profile["rates"]["simulated_cycles"] \
        == result.simulated_cycles
    assert profile["rates"]["cycles_per_host_second"] > 0
    assert profile["rates"]["achieved_slowdown"] > 0


def test_mp_profile_merges_worker_sections():
    simulator, _ = _run("mp", profiled=True)
    profile = simulator.host_profile
    assert profile is not None
    assert profile["backend"] == "mp"
    # Coordinator-side wire/idle attribution.
    for scope in ("mp.quantum_service", "mp.wire.encode",
                  "mp.wire.send", "mp.wire.decode", "mp.idle.wait"):
        assert scope in profile["subsystems"], scope
    # One section per worker with the busy/idle/serialization split.
    workers = profile["workers"]
    assert set(workers) == {"0", "1"}
    for summary in workers.values():
        assert summary["busy_seconds"] > 0
        assert summary["idle_seconds"] >= 0
        assert summary["serialize_seconds"] > 0
        assert 0 < summary["utilization"] <= 1
        assert "quantum.run" in summary["scopes"]
        assert "idle.wait" in summary["scopes"]
        assert "wire.encode" in summary["scopes"]
    skew = profile["worker_skew"]
    assert skew["skew_ratio"] >= 1.0
    assert skew["max_busy_seconds"] >= skew["min_busy_seconds"]


def test_profile_handed_to_chrome_sink(tmp_path):
    import json

    trace_path = tmp_path / "trace.json"
    config = _config("inproc", profiled=True)
    config.telemetry.enabled = True
    config.telemetry.events = ["all"]
    config.telemetry.trace_path = str(trace_path)
    config.validate()
    simulator = create_simulator(config)
    simulator.run(REF)
    trace = json.loads(trace_path.read_text())
    from repro.telemetry.chrome import HOST_PID
    host = [r for r in trace["traceEvents"] if r.get("pid") == HOST_PID]
    assert host, "host-profiler tracks missing from the Chrome trace"
    names = {r["args"]["name"] for r in host
             if r.get("name") == "thread_name"}
    assert "scheduler.quantum" in names
    slices = [r for r in host if r.get("ph") == "X"]
    assert all(r["dur"] >= 0 for r in slices)
