"""HostProfile report assembly: gauges, worker merge, rendering."""

from __future__ import annotations

from repro.profile import (
    PROFILE_SCHEMA,
    HostProfiler,
    build_profile,
    render_profile,
    summarize_worker,
    top_subsystems,
)


class FakeResult:
    simulated_cycles = 1_000_000
    total_instructions = 800_000
    native_seconds = 0.001
    slowdown = 150.0


def _profiler(run_ns: int = 2_000_000_000) -> HostProfiler:
    prof = HostProfiler()
    prof._run_start_ns = 0
    prof._run_stop_ns = run_ns
    prof.add_ns("core.model", 600_000_000, calls=10)
    prof.add_ns("memory.controller", 900_000_000, calls=20)
    return prof


def test_build_profile_rates_and_partition():
    profile = build_profile(_profiler(), FakeResult(), "inproc")
    assert profile["schema"] == PROFILE_SCHEMA
    assert profile["backend"] == "inproc"
    assert profile["host_wall_seconds"] == 2.0
    assert profile["instrumented_seconds"] == 1.5
    assert profile["untracked_seconds"] == 0.5
    rates = profile["rates"]
    assert rates["cycles_per_host_second"] == 500_000.0
    assert rates["instructions_per_host_second"] == 400_000.0
    assert rates["modeled_slowdown"] == 150.0
    # Achieved slowdown is measured host time over modeled native time.
    assert rates["achieved_slowdown"] == 2.0 / 0.001
    assert "workers" not in profile


def test_top_subsystems_ranked_by_self_time():
    profile = build_profile(_profiler(), FakeResult(), "inproc",
                            top_n=1)
    assert [r["name"] for r in profile["top_subsystems"]] \
        == ["memory.controller"]
    full = top_subsystems(profile["subsystems"], 10)
    assert [r["name"] for r in full] \
        == ["memory.controller", "core.model"]


def test_zero_wall_time_yields_zero_rates():
    prof = HostProfiler()  # bracket never opened
    profile = build_profile(prof, FakeResult(), "inproc")
    assert profile["rates"]["cycles_per_host_second"] == 0.0
    assert profile["rates"]["achieved_slowdown"] == 0.0


def test_summarize_worker_busy_idle_serialize_split():
    scopes = {
        "idle.wait": {"calls": 5, "cum_ns": 3_000_000_000,
                      "self_ns": 3_000_000_000},
        "quantum.run": {"calls": 5, "cum_ns": 800_000_000,
                        "self_ns": 800_000_000},
        "wire.encode": {"calls": 9, "cum_ns": 200_000_000,
                        "self_ns": 200_000_000},
    }
    summary = summarize_worker(scopes)
    assert summary["idle_seconds"] == 3.0
    assert summary["busy_seconds"] == 1.0  # quantum + serialization
    assert summary["serialize_seconds"] == 0.2
    assert summary["utilization"] == 0.25
    assert set(summary["scopes"]) == set(scopes)


def test_worker_sections_and_skew():
    worker_scopes = {
        0: {"quantum.run": {"calls": 1, "cum_ns": 400_000_000,
                            "self_ns": 400_000_000}},
        1: {"quantum.run": {"calls": 1, "cum_ns": 100_000_000,
                            "self_ns": 100_000_000}},
    }
    profile = build_profile(_profiler(), FakeResult(), "mp",
                            worker_scopes=worker_scopes)
    assert set(profile["workers"]) == {"0", "1"}
    skew = profile["worker_skew"]
    assert skew["max_busy_seconds"] == 0.4
    assert skew["min_busy_seconds"] == 0.1
    assert skew["skew_ratio"] == 4.0


def test_render_profile_mentions_the_load_bearing_numbers():
    worker_scopes = {0: {"idle.wait": {"calls": 1, "cum_ns": 10,
                                       "self_ns": 10}}}
    text = render_profile(build_profile(
        _profiler(), FakeResult(), "mp", worker_scopes=worker_scopes))
    assert "host wall time:" in text
    assert "cycles/s" in text
    assert "memory.controller" in text
    assert "(untracked)" in text
    assert "worker 0:" in text
