"""HostProfiler unit tests: the self/cum partition invariant."""

from __future__ import annotations

import time

from repro.common.config import ProfileConfig
from repro.profile import HostProfiler, create_profiler


def test_single_scope_self_equals_cum():
    prof = HostProfiler()
    prof.enter("a")
    time.sleep(0.001)
    prof.exit()
    stats = prof.scopes["a"]
    assert stats.calls == 1
    assert stats.cum_ns > 0
    assert stats.self_ns == stats.cum_ns


def test_nested_scopes_split_self_time():
    prof = HostProfiler()
    prof.enter("outer")
    time.sleep(0.001)
    prof.enter("inner")
    time.sleep(0.002)
    prof.exit()
    prof.exit()
    outer = prof.scopes["outer"]
    inner = prof.scopes["inner"]
    # The child's whole elapsed time is deducted from the parent's self
    # time, so cum strictly dominates self for the parent only.
    assert outer.cum_ns > inner.cum_ns
    assert outer.self_ns == outer.cum_ns - inner.cum_ns
    assert inner.self_ns == inner.cum_ns


def test_self_times_partition_instrumented_time():
    prof = HostProfiler()
    for _ in range(5):
        prof.enter("a")
        prof.enter("b")
        prof.enter("c")
        prof.exit()
        prof.exit()
        prof.exit()
    total_self = sum(s.self_ns for s in prof.scopes.values())
    # Every instrumented nanosecond is counted exactly once: the sum of
    # self times equals the top-level scope's cumulative time.
    assert prof.instrumented_ns() == total_self
    assert total_self == prof.scopes["a"].cum_ns


def test_recursive_scope_does_not_double_count():
    prof = HostProfiler()
    prof.enter("f")
    prof.enter("f")
    time.sleep(0.001)
    prof.exit()
    prof.exit()
    stats = prof.scopes["f"]
    assert stats.calls == 2
    # The inner activation's elapsed time lands in cum twice (that is
    # what cumulative means under recursion) but in self exactly once.
    assert stats.self_ns <= stats.cum_ns


def test_add_ns_is_flat_and_credits_parent():
    prof = HostProfiler()
    prof.add_ns("idle", 500, calls=2)
    assert prof.scopes["idle"].calls == 2
    assert prof.scopes["idle"].cum_ns == 500
    assert prof.scopes["idle"].self_ns == 500
    # Inside an open frame, pre-measured time counts as child time.
    prof.enter("outer")
    prof.add_ns("idle", 300)
    prof.exit()
    assert prof.scopes["idle"].cum_ns == 800
    assert prof.scopes["outer"].self_ns \
        == prof.scopes["outer"].cum_ns - 300


def test_wrap_times_every_call_and_keeps_reference():
    prof = HostProfiler()

    def double(x):
        return 2 * x

    timed = prof.wrap("math", double)
    assert timed(21) == 42
    assert timed(2) == 4
    assert timed.__wrapped__ is double
    assert prof.scopes["math"].calls == 2


def test_run_bracket_is_idempotent():
    prof = HostProfiler()
    assert prof.run_ns == 0  # unset bracket reads as zero
    prof.start_run()
    time.sleep(0.001)
    prof.start_run()  # second open must not reset the origin
    prof.stop_run()
    first = prof.run_ns
    assert first >= 1_000_000


def test_scope_dict_roundtrips_through_absorb():
    prof = HostProfiler()
    prof.enter("a")
    prof.exit()
    prof.add_ns("b", 100)
    merged = HostProfiler()
    merged.absorb(prof.scope_dict())
    merged.absorb(prof.scope_dict(), prefix="w0.")
    assert merged.scopes["a"].calls == 1
    assert merged.scopes["w0.b"].cum_ns == 100
    assert merged.scope_dict()["b"] == prof.scope_dict()["b"]


def test_create_profiler_observer_trick():
    # Disabled profiling yields no object at all: call sites keep their
    # original methods and pay zero overhead.
    assert create_profiler(None) is None
    assert create_profiler(ProfileConfig(enabled=False)) is None
    assert isinstance(create_profiler(ProfileConfig(enabled=True)),
                      HostProfiler)
