"""Property-based tests of the target heap allocator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address import AddressSpace
from repro.memory.allocator import DynamicMemoryManager


def manager():
    return DynamicMemoryManager(AddressSpace(8, 64))


sizes = st.integers(min_value=1, max_value=4096)
aligns = st.sampled_from([8, 16, 32, 64, 128])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(sizes, aligns), min_size=1, max_size=80))
def test_live_blocks_never_overlap(requests):
    mgr = manager()
    live = []
    for i, (size, align) in enumerate(requests):
        address = mgr.malloc(size, align)
        assert address % align == 0
        for other, other_size in live:
            assert address + size <= other or \
                other + other_size <= address
        live.append((address, size))
        if i % 3 == 2:  # free every third allocation
            victim = live.pop(0)
            mgr.free(victim[0])


@settings(max_examples=50, deadline=None)
@given(st.lists(sizes, min_size=1, max_size=60))
def test_free_all_returns_all_bytes(requested):
    mgr = manager()
    blocks = [mgr.malloc(size) for size in requested]
    for block in blocks:
        mgr.free(block)
    assert mgr.heap_bytes_in_use == 0
    assert mgr.live_allocations == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(sizes, min_size=1, max_size=60))
def test_blocks_stay_in_heap_segment(requested):
    mgr = manager()
    space = mgr.space
    for size in requested:
        address = mgr.malloc(size)
        assert space.HEAP_BASE <= address
        assert address + size <= space.DYNAMIC_BASE


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(sizes, st.booleans()), min_size=2,
                max_size=60))
def test_alloc_free_alloc_reuse_is_consistent(script):
    """Interleaved alloc/free: every address handed out twice must have
    been freed in between."""
    mgr = manager()
    live = set()
    ever = {}
    for size, do_free in script:
        if do_free and live:
            address = live.pop()
            mgr.free(address)
        address = mgr.malloc(size)
        assert address not in live
        live.add(address)
        ever[address] = ever.get(address, 0) + 1
