"""Property-based tests of the cache (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.common.stats import StatGroup
from repro.memory.cache import Cache, LineState


def make_cache(size=2048, line=64, ways=2):
    return Cache("prop", CacheConfig(size_bytes=size, line_bytes=line,
                                     associativity=ways),
                 StatGroup("c"))


line_addresses = st.integers(min_value=0, max_value=255).map(
    lambda i: i * 64)
operations = st.lists(
    st.tuples(st.sampled_from(["insert", "lookup", "remove"]),
              line_addresses),
    min_size=1, max_size=300)


@settings(max_examples=60, deadline=None)
@given(operations)
def test_capacity_never_exceeded(ops):
    """Residency can never exceed sets * ways, whatever the workload."""
    cache = make_cache()
    capacity = cache.num_sets * cache.associativity
    for op, address in ops:
        if op == "insert":
            cache.insert(address, LineState.SHARED)
        elif op == "lookup":
            cache.lookup(address)
        else:
            cache.remove(address)
        assert cache.resident_lines <= capacity


@settings(max_examples=60, deadline=None)
@given(operations)
def test_no_duplicate_lines(ops):
    """The same line address is never resident twice."""
    cache = make_cache()
    for op, address in ops:
        if op == "insert":
            cache.insert(address, LineState.SHARED)
        elif op == "remove":
            cache.remove(address)
        addresses = [line.address for line in cache]
        assert len(addresses) == len(set(addresses))


@settings(max_examples=60, deadline=None)
@given(operations)
def test_model_matches_reference_presence(ops):
    """Cache presence agrees with an LRU reference model."""
    cache = make_cache(size=512, line=64, ways=2)  # 4 sets
    reference = {}  # set index -> list of addresses, LRU first

    def set_of(address):
        return (address // 64) % cache.num_sets

    for op, address in ops:
        index = set_of(address)
        entries = reference.setdefault(index, [])
        if op == "insert":
            cache.insert(address, LineState.SHARED)
            if address in entries:
                entries.remove(address)
            elif len(entries) >= 2:
                entries.pop(0)
            entries.append(address)
        elif op == "lookup":
            hit = cache.lookup(address) is not None
            assert hit == (address in entries)
            if address in entries:
                entries.remove(address)
                entries.append(address)
        else:
            cache.remove(address)
            if address in entries:
                entries.remove(address)

    for index, entries in reference.items():
        for address in entries:
            assert cache.peek(address) is not None


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(line_addresses,
                          st.binary(min_size=64, max_size=64)),
                min_size=1, max_size=100))
def test_data_integrity(writes):
    """The last data inserted for a resident line is what we read."""
    cache = make_cache(size=16 * 1024, line=64, ways=8)
    latest = {}
    for address, data in writes:
        cache.insert(address, LineState.MODIFIED, bytearray(data))
        latest[address] = data
    for line in cache:
        assert bytes(line.data) == latest[line.address]
