"""Property-based tests of the coherence protocol.

The key invariant suite: after ANY sequence of loads and stores from
any tiles, (a) every load observes the value of the most recent store
to that location (sequential consistency of the functional memory),
and (b) the directory/cache cross-invariants hold.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SimulationConfig
from repro.common.units import KB
from tests.conftest import MemoryRig

HEAP = 0x1000_0000

tiles = st.integers(min_value=0, max_value=3)
offsets = st.integers(min_value=0, max_value=63).map(lambda i: i * 8)
values = st.integers(min_value=0, max_value=2**64 - 1)
accesses = st.lists(
    st.tuples(st.booleans(), tiles, offsets, values),
    min_size=1, max_size=200)


def build_rig(l2_size=None, directory="full_map", max_sharers=4):
    config = SimulationConfig(num_tiles=4)
    config.memory.directory_type = directory
    config.memory.directory_max_sharers = max_sharers
    if l2_size is not None:
        config.memory.l1i.enabled = False
        config.memory.l1d.enabled = False
        config.memory.l2.size_bytes = l2_size
        config.memory.l2.associativity = 2
    return MemoryRig(config)


@settings(max_examples=40, deadline=None)
@given(accesses)
def test_loads_see_latest_store(accesses):
    rig = build_rig()
    shadow = {}
    for is_store, tile, offset, value in accesses:
        address = HEAP + offset
        if is_store:
            rig.store_int(tile, address, value)
            shadow[offset] = value
        else:
            got, _ = rig.load_int(tile, address)
            assert got == shadow.get(offset, 0)
    rig.engine.check_coherence_invariants()


@settings(max_examples=25, deadline=None)
@given(accesses)
def test_invariants_with_tiny_l2(accesses):
    """Evictions and writebacks interleave with coherence traffic."""
    rig = build_rig(l2_size=2 * KB)
    shadow = {}
    for is_store, tile, offset, value in accesses:
        address = HEAP + offset * 64  # spread across many lines
        if is_store:
            rig.store_int(tile, address, value)
            shadow[offset] = value
        else:
            got, _ = rig.load_int(tile, address)
            assert got == shadow.get(offset, 0)
    rig.engine.check_coherence_invariants()


@settings(max_examples=25, deadline=None)
@given(accesses, st.sampled_from(["limited", "limitless"]))
def test_invariants_under_alternate_directories(accesses, directory):
    rig = build_rig(directory=directory, max_sharers=2)
    shadow = {}
    for is_store, tile, offset, value in accesses:
        address = HEAP + offset
        if is_store:
            rig.store_int(tile, address, value)
            shadow[offset] = value
        else:
            got, _ = rig.load_int(tile, address)
            assert got == shadow.get(offset, 0)
    rig.engine.check_coherence_invariants()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(tiles, st.integers(0, 511), st.binary(
    min_size=1, max_size=16)), min_size=1, max_size=120))
def test_byte_level_consistency(writes):
    """Unaligned, variable-size writes: memory behaves like one big
    byte array regardless of which tile wrote what."""
    rig = build_rig()
    shadow = bytearray(1024)
    for tile, offset, data in writes:
        offset = min(offset, 1024 - len(data))
        rig.store(tile, HEAP + offset, bytes(data))
        shadow[offset:offset + len(data)] = data
    got, _ = rig.load(0, HEAP, 1024)
    assert got == bytes(shadow)
    rig.engine.check_coherence_invariants()
