"""Property-based end-to-end simulations.

Hypothesis generates small random target programs (loads, stores,
compute, locks, barriers) and host configurations; the simulation must
complete, produce sequentially consistent memory contents, and leave
the coherence invariants intact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SimulationConfig
from repro.sim.simulator import Simulator


def make_program(script, nthreads):
    """Build a fork-join program from a per-thread op script."""

    def worker(ctx, index, base, lock):
        shadow = {}
        for kind, slot, value in script:
            address = base + ((slot * nthreads + index) % 64) * 8
            if kind == 0:
                got = yield from ctx.load_u64(address)
                expected = shadow.get(address, 0)
                assert got == expected, (address, got, expected)
            elif kind == 1:
                yield from ctx.store_u64(address, value)
                shadow[address] = value
            elif kind == 2:
                yield from ctx.compute(value % 200 + 1)
            else:
                yield from ctx.lock(lock)
                got = yield from ctx.load_u64(base + 512)
                yield from ctx.store_u64(base + 512, got + 1)
                yield from ctx.unlock(lock)

    def main(ctx):
        base = yield from ctx.calloc(1024, align=64)
        lock = yield from ctx.calloc(8, align=64)
        threads = yield from ctx.spawn_workers(worker, nthreads - 1,
                                               base, lock)
        yield from worker(ctx, nthreads - 1, base, lock)
        yield from ctx.join_all(threads)
        return (yield from ctx.load_u64(base + 512))

    return main


ops = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 15),
              st.integers(0, 1000)),
    min_size=1, max_size=40)


@settings(max_examples=25, deadline=None)
@given(ops, st.integers(2, 4), st.integers(1, 2), st.integers(0, 10))
def test_random_programs_complete_consistently(script, nthreads,
                                               machines, seed):
    config = SimulationConfig(num_tiles=nthreads, seed=seed)
    config.host.num_machines = machines
    config.host.quantum_instructions = 150
    simulator = Simulator(config)
    result = simulator.run(make_program(script, nthreads))
    simulator.engine.check_coherence_invariants()
    lock_increments = sum(1 for kind, _, _ in script if kind == 3)
    assert result.main_result == lock_increments * nthreads


@settings(max_examples=15, deadline=None)
@given(ops, st.integers(0, 5))
def test_sync_models_agree_functionally(script, seed):
    """The three sync models give the same functional answer."""
    answers = set()
    for model in ("lax", "lax_barrier", "lax_p2p"):
        config = SimulationConfig(num_tiles=3, seed=seed)
        config.sync.model = model
        config.sync.barrier_interval = 700
        config.sync.p2p_slack = 3000
        config.sync.p2p_interval = 700
        config.host.quantum_instructions = 150
        simulator = Simulator(config)
        result = simulator.run(make_program(script, 3))
        answers.add(result.main_result)
    assert len(answers) == 1
