"""Property-based tests: mesh routing and progress estimation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ids import TileId
from repro.network.routing import MeshGeometry
from repro.sync.progress import ProgressEstimator


mesh_sizes = st.integers(min_value=1, max_value=100)


@settings(max_examples=60, deadline=None)
@given(mesh_sizes, st.data())
def test_route_length_is_manhattan_distance(n, data):
    mesh = MeshGeometry(n)
    a = TileId(data.draw(st.integers(0, n - 1)))
    b = TileId(data.draw(st.integers(0, n - 1)))
    assert len(mesh.route(a, b)) == mesh.distance(a, b)


@settings(max_examples=60, deadline=None)
@given(mesh_sizes, st.data())
def test_triangle_inequality(n, data):
    mesh = MeshGeometry(n)
    a = TileId(data.draw(st.integers(0, n - 1)))
    b = TileId(data.draw(st.integers(0, n - 1)))
    c = TileId(data.draw(st.integers(0, n - 1)))
    assert mesh.distance(a, c) <= mesh.distance(a, b) + \
        mesh.distance(b, c)


@settings(max_examples=60, deadline=None)
@given(mesh_sizes)
def test_grid_holds_all_tiles(n):
    mesh = MeshGeometry(n)
    assert mesh.width * mesh.height >= n
    # Near-square: never more than one extra row's worth of slack.
    assert mesh.width * (mesh.height - 1) < n or mesh.height == 1


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 10**9), min_size=1, max_size=200),
       st.integers(1, 64))
def test_progress_estimate_bounded_by_window(samples, window):
    estimator = ProgressEstimator(window)
    for sample in samples:
        estimator.observe(sample)
    tail = samples[-window:]
    assert min(tail) <= estimator.estimate() <= max(tail)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=100))
def test_progress_estimate_matches_mean(samples):
    estimator = ProgressEstimator(len(samples))
    for sample in samples:
        estimator.observe(sample)
    assert abs(estimator.estimate()
               - sum(samples) / len(samples)) < 1e-6
