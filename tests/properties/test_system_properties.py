"""Property-based tests of the system layer (futex, barriers)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.memory.address import AddressSpace
from repro.memory.allocator import DynamicMemoryManager
from repro.system.futex import FutexManager
from repro.system.mcp import MasterControlProgram


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.booleans(), st.integers(0, 7), st.integers(0, 3)),
    min_size=1, max_size=200))
def test_futex_conservation(script):
    """Every wake wakes a previously waiting, not-yet-woken tile."""
    wakes = []
    futex = FutexManager(lambda t, ts: wakes.append(int(t)),
                         StatGroup("f"))
    waiting = set()  # (address, tile) pairs currently enqueued
    for is_wait, tile, address in script:
        address = 0x1000 + address * 8
        if is_wait:
            futex.wait(address, TileId(tile))
            waiting.add((address, tile))
        else:
            woken = futex.wake(address, 1, timestamp=0)
            assert len(woken) <= 1
            for t in woken:
                assert (address, int(t)) in waiting
                waiting.discard((address, int(t)))
    # Per-address accounting: nobody still queued was reported woken
    # more times than they waited.
    for address, tile in waiting:
        assert futex.waiters(address) > 0


@settings(max_examples=60, deadline=None)
@given(st.integers(2, 8), st.integers(1, 5), st.data())
def test_barrier_generations_complete(participants, generations, data):
    """Any arrival order releases exactly once per generation."""
    wakes = []
    allocator = DynamicMemoryManager(AddressSpace(8, 64))
    mcp = MasterControlProgram(8, allocator,
                               lambda t, ts: wakes.append((int(t), ts)),
                               StatGroup("m"))
    address = 0x2000
    for generation in range(generations):
        order = data.draw(st.permutations(list(range(participants))))
        releases = 0
        for position, tile in enumerate(order):
            outcome = mcp.barrier_arrive(address, participants,
                                         TileId(tile),
                                         clock=generation * 1000 + position)
            if outcome is not None:
                releases += 1
                assert position == participants - 1
        assert releases == 1
    # Each generation wakes everyone but the last arriver.
    assert len(wakes) == generations * (participants - 1)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 6), min_size=1, max_size=30))
def test_thread_manager_never_double_allocates(spawn_waves):
    """allocate_tile never hands out a tile with a live thread."""
    from repro.system.threading_api import ThreadManager

    manager = ThreadManager(8, lambda t, ts: None, StatGroup("t"))
    live = set()
    clock = 0
    for wave in spawn_waves:
        # Spawn `wave` threads (as capacity allows), then retire one.
        for _ in range(wave):
            if len(live) >= 8:
                break
            tile = manager.allocate_tile()
            assert int(tile) not in live
            manager.register_spawn(tile)
            live.add(int(tile))
        if live:
            victim = min(live)
            clock += 10
            manager.on_thread_exit(TileId(victim), clock)
            live.discard(victim)
