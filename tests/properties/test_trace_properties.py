"""Property-based tests of trace encode/decode."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ids import ThreadId
from repro.core.isa import InstructionClass
from repro.frontend import ops
from repro.frontend.trace import Trace, _decode_op, _encode_op


def op_strategy():
    addresses = st.integers(0x1000_0000, 0x1100_0000)
    return st.one_of(
        st.builds(ops.Compute, st.integers(1, 256),
                  st.sampled_from(list(InstructionClass))),
        st.builds(ops.Branch, st.booleans(),
                  st.integers(0, 2**20)),
        st.builds(ops.Load, addresses, st.integers(1, 64)),
        st.builds(ops.Store, addresses, st.binary(min_size=1,
                                                  max_size=64)),
        st.builds(ops.Malloc, st.integers(1, 4096),
                  st.sampled_from([8, 16, 64])),
        st.builds(ops.Free, addresses),
        st.builds(ops.Send, st.integers(0, 63).map(ThreadId),
                  st.binary(min_size=0, max_size=32),
                  st.one_of(st.none(), st.integers(0, 100))),
        st.builds(ops.Recv,
                  st.one_of(st.none(),
                            st.integers(0, 63).map(ThreadId)),
                  st.one_of(st.none(), st.integers(0, 100))),
        st.builds(ops.Lock, addresses),
        st.builds(ops.Unlock, addresses),
        st.builds(ops.BarrierWait, addresses, st.integers(1, 64)),
        st.builds(ops.Join, st.integers(0, 63).map(ThreadId)),
        st.builds(ops.Syscall, st.sampled_from(["brk", "write", "read"]),
                  st.tuples(st.one_of(st.integers(0, 100),
                                      st.binary(max_size=16),
                                      st.text(max_size=8)))),
    )


def canonical(op):
    """Comparable form (dataclass equality ignores typed-int classes)."""
    record = _encode_op(op, spawned_thread=0)
    return record


@settings(max_examples=150, deadline=None)
@given(op_strategy())
def test_encode_decode_round_trip(op):
    record = _encode_op(op)
    decoded = _decode_op(record, spawn_factory=lambda child: None)
    assert _encode_op(decoded) == record


@settings(max_examples=40, deadline=None)
@given(st.lists(op_strategy(), min_size=0, max_size=50))
def test_trace_json_round_trip(op_list):
    trace = Trace()
    trace.threads[0] = [_encode_op(op) for op in op_list]
    restored = Trace.from_json(trace.to_json())
    assert restored.threads == trace.threads
    assert restored.total_ops == len(op_list)
