"""Functional fast-forward: mode switching, warmth, backend identity."""

import pytest

from repro.sample.library import roi_metrics
from repro.sim.runner import create_simulator
from tests.conftest import tiny_config


def ff_program(ctx):
    # Strided stores miss the caches, so detailed and functional
    # execution genuinely disagree on timing (unit cost vs DRAM).
    span = 1 << 20
    base = yield from ctx.malloc(span)
    for i in range(400):
        yield from ctx.store_u64(base + (i * 4096) % span, i)
        yield from ctx.compute(20)


def sampled_config(ff_until=1500, period=0, detail=0, warmup=0):
    config = tiny_config(2)
    config.sample.ff_until = ff_until
    config.sample.period = period
    config.sample.detail = detail
    config.sample.warmup = warmup
    config.validate()
    return config


class TestFastForward:
    def test_switch_lands_past_target(self):
        result = create_simulator(sampled_config()).run(ff_program)
        ff = result.sample["ff"]
        assert ff["until"] == 1500
        assert ff["cycle"] >= 1500
        switches = result.sample["mode_switches"]
        assert switches and switches[-1]["mode"] == "detailed"

    def test_simulator_ends_detailed(self):
        simulator = create_simulator(sampled_config())
        simulator.run(ff_program)
        assert not simulator.exec_functional

    def test_ff_changes_timing_not_work(self):
        detailed = create_simulator(tiny_config(2)).run(ff_program)
        sampled = create_simulator(sampled_config()).run(ff_program)
        assert sampled.total_instructions == detailed.total_instructions
        assert sampled.simulated_cycles != detailed.simulated_cycles

    def test_caches_stay_warm_during_ff(self):
        """Functional mode bypasses timing, not the memory system: the
        run's cache counters keep moving while fast-forwarded."""
        result = create_simulator(sampled_config()).run(ff_program)
        lookups = sum(v for k, v in result.counters.items()
                      if k.endswith(".lookups"))
        assert lookups > 0

    def test_ff_run_is_deterministic(self):
        a = create_simulator(sampled_config()).run(ff_program)
        b = create_simulator(sampled_config()).run(ff_program)
        assert roi_metrics(a) == roi_metrics(b)

    def test_target_past_run_end_never_switches(self):
        config = sampled_config(ff_until=10_000_000)
        result = create_simulator(config).run(ff_program)
        assert result.sample["ff"]["cycle"] is None

    def test_intervals_record_windows(self):
        config = sampled_config(ff_until=1500, period=3000, detail=800,
                                warmup=400)
        result = create_simulator(config).run(ff_program)
        extrapolation = result.sample["extrapolation"]
        assert extrapolation["windows"] >= 1
        assert (extrapolation["cycles_low"] <= extrapolation["cycles"]
                <= extrapolation["cycles_high"])
        for window in result.sample["windows"]:
            assert window["end"] >= window["start"]
            assert window["instructions"] >= 0


@pytest.mark.slow
class TestBackendIdentity:
    def test_sampled_run_identical_across_backends(self):
        """A fast-forwarded, interval-sampled run is byte-identical on
        the inproc and mp backends (SET_MODE keeps workers in step)."""
        from repro.common.config import SimulationConfig
        from repro.distrib.wire import WorkloadRef

        def config(backend):
            cfg = SimulationConfig(num_tiles=4, seed=42)
            cfg.distrib.backend = backend
            cfg.sample.ff_until = 8000
            cfg.sample.period = 20000
            cfg.sample.detail = 6000
            cfg.sample.warmup = 6000
            cfg.validate()
            return cfg

        program = WorkloadRef("fft", 4, 0.3)
        inproc = create_simulator(config("inproc")).run(program)
        mp = create_simulator(config("mp")).run(program)
        assert roi_metrics(inproc) == roi_metrics(mp)
