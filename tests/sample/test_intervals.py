"""Phase geometry: warmup-first periods after the initial fast-forward."""

import pytest

from repro.common.config import SampleConfig
from repro.sample.intervals import DETAIL, FF, WARMUP, Phase, phase_at


def sample(ff_until=10000, period=5000, detail=1000, warmup=500):
    config = SampleConfig(ff_until=ff_until, period=period,
                          detail=detail, warmup=warmup)
    config.validate()
    return config


class TestInitialFastForward:
    def test_before_target_is_ff(self):
        phase = phase_at(sample(), 0)
        assert phase.name == FF
        assert (phase.start, phase.end) == (0, 10000)

    def test_last_ff_cycle(self):
        assert phase_at(sample(), 9999).name == FF

    def test_target_cycle_starts_warmup(self):
        """``ff_until`` is the exact cycle detailed execution begins —
        the contract the snapshot library's switch-point checkpoint
        depends on."""
        phase = phase_at(sample(), 10000)
        assert phase.name == WARMUP
        assert phase.start == 10000

    def test_no_intervals_is_open_ended_detail(self):
        config = SampleConfig(ff_until=10000)
        config.validate()
        phase = phase_at(config, 10000)
        assert phase.name == DETAIL
        assert (phase.start, phase.end) == (10000, None)

    def test_no_ff_periods_start_at_zero(self):
        config = sample(ff_until=0)
        assert phase_at(config, 0).name == WARMUP
        assert phase_at(config, 500).name == DETAIL


class TestPeriodGeometry:
    def test_warmup_then_detail_then_ff(self):
        config = sample()  # base 10000: warmup 500, detail 1000, ff 3500
        assert phase_at(config, 10499).name == WARMUP
        assert phase_at(config, 10500).name == DETAIL
        assert phase_at(config, 11499).name == DETAIL
        assert phase_at(config, 11500).name == FF
        assert phase_at(config, 14999).name == FF

    def test_second_period_repeats(self):
        config = sample()
        assert phase_at(config, 15000).name == WARMUP
        assert phase_at(config, 15500).name == DETAIL
        assert phase_at(config, 16500).name == FF

    def test_phase_bounds_are_absolute(self):
        config = sample()
        detail = phase_at(config, 16000)
        assert (detail.start, detail.end) == (15500, 16500)
        ff = phase_at(config, 17000)
        assert (ff.start, ff.end) == (16500, 20000)

    def test_zero_warmup_opens_with_detail(self):
        config = sample(warmup=0)
        assert phase_at(config, 10000).name == DETAIL

    def test_full_duty_cycle_never_fast_forwards(self):
        config = sample(period=1500, detail=1000, warmup=500)
        for cycle in range(10000, 16000, 100):
            assert phase_at(config, cycle).name in (WARMUP, DETAIL)


class TestPhaseProperties:
    def test_functional_only_for_ff(self):
        assert Phase(FF, 0, 1).functional
        assert not Phase(WARMUP, 0, 1).functional
        assert not Phase(DETAIL, 0, 1).functional

    def test_measured_only_for_detail(self):
        assert Phase(DETAIL, 0, 1).measured
        assert not Phase(WARMUP, 0, 1).measured
        assert not Phase(FF, 0, 1).measured


class TestValidation:
    def test_windows_must_fit_period(self):
        from repro.common.errors import ConfigError
        config = SampleConfig(ff_until=100, period=1000, detail=800,
                              warmup=300)
        with pytest.raises(ConfigError):
            config.validate()
