"""Snapshot library: keying, entries, prefix sharing, determinism."""

import json
import os
import subprocess
import sys

import pytest

from repro.common.config import SimulationConfig
from repro.common.errors import SampleError
from repro.sample.library import (SnapshotLibrary, roi_metrics,
                                  run_with_library, workload_descriptor)
from repro.sim.experiment import sweep
from tests.conftest import tiny_config


def long_program(ctx):
    base = yield from ctx.malloc(512)
    for i in range(400):
        yield from ctx.store_u64(base + (i % 16) * 8, i)
        yield from ctx.compute(20)


def library_config(tmp_path=None, ff_until=1500, **overrides):
    config = tiny_config(2)
    config.sample.ff_until = ff_until
    if tmp_path is not None:
        config.sample.library = str(tmp_path / "lib")
    for dotted, value in overrides.items():
        section, _, field = dotted.partition("__")
        setattr(getattr(config, section), field, value)
    config.validate()
    return config


class TestKeying:
    def key(self, library, **overrides):
        return library.key(library_config(**overrides), long_program)

    def test_stable(self, tmp_path):
        library = SnapshotLibrary(str(tmp_path))
        assert self.key(library) == self.key(library)

    def test_core_model_swap_shares_entry(self, tmp_path):
        """Timing-only sections are prefix-irrelevant: a core-model
        study forks every variant from one snapshot."""
        library = SnapshotLibrary(str(tmp_path))
        assert (self.key(library)
                == self.key(library, core__model="out_of_order"))

    def test_network_swap_shares_entry(self, tmp_path):
        library = SnapshotLibrary(str(tmp_path))
        assert (self.key(library)
                == self.key(library, network__memory_model="ring"))

    def test_interval_geometry_shares_entry(self, tmp_path):
        """Sampling geometry past the switch point is post-prefix."""
        library = SnapshotLibrary(str(tmp_path))
        base = self.key(library)
        config = library_config(ff_until=1500)
        config.sample.period = 4000
        config.sample.detail = 1000
        config.sample.warmup = 500
        assert library.key(config, long_program) == base

    def test_seed_flip_changes_key(self, tmp_path):
        library = SnapshotLibrary(str(tmp_path))
        config = library_config()
        config.seed = 7
        assert library.key(config, long_program) != self.key(library)

    def test_ff_target_changes_key(self, tmp_path):
        library = SnapshotLibrary(str(tmp_path))
        assert self.key(library) != self.key(library, sample__ff_until=999)

    def test_workload_identity_changes_key(self, tmp_path):
        from repro.distrib.wire import WorkloadRef
        library = SnapshotLibrary(str(tmp_path))
        config = library_config()
        a = library.key(config, WorkloadRef("fft", 2, 0.3))
        b = library.key(config, WorkloadRef("fft", 2, 0.5))
        c = library.key(config, WorkloadRef("lu", 2, 0.3))
        assert len({a, b, c}) == 3

    def test_args_change_key(self, tmp_path):
        library = SnapshotLibrary(str(tmp_path))
        config = library_config()
        assert (library.key(config, long_program, ())
                != library.key(config, long_program, (1,)))

    def test_key_stable_across_hash_seeds(self, tmp_path):
        """The key must not depend on ``PYTHONHASHSEED`` — a serve
        fleet's children must agree on entry identity."""
        script = (
            "from repro.common.config import SimulationConfig\n"
            "from repro.distrib.wire import WorkloadRef\n"
            "from repro.sample.library import SnapshotLibrary\n"
            "c = SimulationConfig(num_tiles=4, seed=11)\n"
            "c.sample.ff_until = 5000\n"
            "c.validate()\n"
            "lib = SnapshotLibrary(%r)\n"
            "print(lib.key(c, WorkloadRef('fft', 4, 0.3)))\n"
            % str(tmp_path))
        keys = set()
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (os.path.join(os.getcwd(), "src"),
                            env.get("PYTHONPATH")) if p)
            out = subprocess.run(
                [sys.executable, "-c", script], env=env, check=True,
                capture_output=True, text=True)
            keys.add(out.stdout.strip())
        assert len(keys) == 1

    def test_descriptor_for_named_workload(self):
        from repro.distrib.wire import WorkloadRef
        descriptor = workload_descriptor(WorkloadRef("fft", 4, 0.5))
        assert descriptor["workload"] == "fft"
        assert descriptor["nthreads"] == 4
        assert descriptor["scale"] == 0.5


class TestEntries:
    def test_prime_then_hit(self, tmp_path):
        config = library_config(tmp_path)
        library = SnapshotLibrary(config.sample.library)
        key, primed = library.ensure(config, long_program)
        assert primed and library.has(key)
        again, primed_again = library.ensure(config, long_program)
        assert again == key and not primed_again
        assert library.stats == {"primes": 1, "hits": 1}

    def test_meta_records_identity_and_events(self, tmp_path):
        config = library_config(tmp_path)
        library = SnapshotLibrary(config.sample.library)
        key, _ = library.ensure(config, long_program)
        meta = library.meta(key)
        assert meta["format"] == "repro.sample/1"
        assert meta["ff_until"] == config.sample.ff_until
        assert meta["prefix_hash"] == config.prefix_hash()
        # The primer's SAMPLE telemetry rides along: exactly one
        # fast-forward completion.
        names = [event["name"] for event in meta["events"]]
        assert names.count("ff.done") == 1

    def test_entries_and_drop(self, tmp_path):
        config = library_config(tmp_path)
        library = SnapshotLibrary(config.sample.library)
        key, _ = library.ensure(config, long_program)
        assert [k for k, _ in library.entries()] == [key]
        assert library.drop(key)
        assert library.entries() == []
        assert not library.drop(key)

    def test_priming_requires_ff(self, tmp_path):
        config = library_config(tmp_path, ff_until=0)
        library = SnapshotLibrary(str(tmp_path / "lib"))
        with pytest.raises(SampleError):
            library.prime(config, long_program)

    def test_short_workload_fails_loudly(self, tmp_path):
        config = library_config(tmp_path, ff_until=10_000_000)
        library = SnapshotLibrary(config.sample.library)
        with pytest.raises(SampleError, match="finished before"):
            library.prime(config, long_program)

    def test_fork_unknown_key(self, tmp_path):
        library = SnapshotLibrary(str(tmp_path))
        with pytest.raises(SampleError, match="no library entry"):
            library.fork("deadbeefdeadbeef", library_config())


class TestForkDeterminism:
    def test_forked_equals_unshared(self, tmp_path):
        config = library_config(tmp_path)
        library = SnapshotLibrary(config.sample.library)
        outcome = library.verify(config, long_program)
        assert outcome["identical"]

    def test_core_variant_forked_equals_unshared(self, tmp_path):
        config = library_config(tmp_path)
        library = SnapshotLibrary(config.sample.library)
        library.ensure(config, long_program)
        variant = library_config(tmp_path, core__model="out_of_order")
        outcome = library.verify(variant, long_program)
        assert outcome["identical"]
        assert not outcome["primed"]  # shared the in-order prefix
        assert library.stats["primes"] == 1

    def test_interval_variant_forked_equals_unshared(self, tmp_path):
        """Warmup-first period geometry keeps an interval-sampled fork
        byte-identical to the unshared run (the fork must discard the
        primer's open window when the variant starts in warmup)."""
        config = library_config(tmp_path)
        config.sample.period = 4000
        config.sample.detail = 1000
        config.sample.warmup = 600
        config.validate()
        library = SnapshotLibrary(config.sample.library)
        outcome = library.verify(config, long_program)
        assert outcome["identical"]


class TestSharedPrefixSweep:
    def test_three_variant_sweep_primes_once(self, tmp_path):
        """The acceptance scenario: a 3-variant sweep over one prefix
        performs exactly one fast-forward."""
        library = SnapshotLibrary(str(tmp_path / "lib"))
        configs = []
        for model, width in (("in_order", 1), ("in_order", 2),
                             ("out_of_order", 2)):
            config = library_config(tmp_path)
            config.core.model = model
            config.core.dispatch_width = width
            config.validate()
            configs.append(config)
        results = sweep(configs, long_program, share_prefix=True,
                        library=library)
        assert len(results) == 3
        assert library.stats == {"primes": 1, "hits": 2}
        keys = {r.sample["library"]["key"] for r in results}
        assert len(keys) == 1
        assert [r.sample["library"]["primed"] for r in results] \
            == [True, False, False]
        # Exactly one fast-forward in the primed entry's telemetry.
        meta = library.meta(keys.pop())
        names = [event["name"] for event in meta["events"]]
        assert names.count("ff.done") == 1

    def test_explicit_library_needs_no_config_root(self, tmp_path):
        """The documented calling convention: passing ``library=``
        serves every fast-forwarding variant even when no config names
        a library directory — sweep fills the root in itself."""
        library = SnapshotLibrary(str(tmp_path / "lib"))
        configs = []
        for model in ("in_order", "out_of_order"):
            config = library_config(None)  # sample.library unset
            config.core.model = model
            config.validate()
            assert not config.sample.library
            configs.append(config)
        results = sweep(configs, long_program, share_prefix=True,
                        library=library)
        assert library.stats == {"primes": 1, "hits": 1}
        assert [r.sample["library"]["root"] for r in results] \
            == [library.root] * 2

    def test_sweep_without_share_prefix_runs_unshared(self, tmp_path):
        config = library_config(tmp_path)
        library = SnapshotLibrary(config.sample.library)
        results = sweep([config], long_program)
        assert len(results) == 1
        assert library.stats == {"primes": 0, "hits": 0}

    def test_run_with_library_annotates_result(self, tmp_path):
        config = library_config(tmp_path)
        result = run_with_library(config, long_program)
        annotation = result.sample["library"]
        assert annotation["primed"]
        assert annotation["root"] == config.sample.library
        forked = run_with_library(config, long_program)
        assert not forked.sample["library"]["primed"]
        assert (roi_metrics(forked) == roi_metrics(result))
