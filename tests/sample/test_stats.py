"""Extrapolation statistics: t table, CIs, gap reconstruction."""

import pytest

from repro.sample.stats import confidence_interval, extrapolate, t_critical


def window(before, instructions, cycles):
    return {"instructions_before": before, "instructions": instructions,
            "cycles": cycles}


class TestTCritical:
    def test_exact_row(self):
        assert t_critical(0.95, 5) == pytest.approx(2.571)

    def test_df_snaps_down(self):
        # 13 df is not tabulated; snapping down to 12 is conservative.
        assert t_critical(0.95, 13) == pytest.approx(2.179)

    def test_large_df_uses_normal(self):
        assert t_critical(0.95, 1000) == pytest.approx(1.960)

    def test_confidence_snaps_to_nearest(self):
        assert t_critical(0.94, 5) == pytest.approx(2.571)
        assert t_critical(0.91, 5) == pytest.approx(2.015)

    def test_zero_df_rejected(self):
        with pytest.raises(ValueError):
            t_critical(0.95, 0)


class TestConfidenceInterval:
    def test_empty(self):
        assert confidence_interval([]) == (0.0, 0.0)

    def test_single_sample_has_no_width(self):
        mean, half = confidence_interval([42.0])
        assert mean == pytest.approx(42.0)
        assert half == 0.0

    def test_known_interval(self):
        mean, half = confidence_interval([1.0, 2.0, 3.0], 0.95)
        assert mean == pytest.approx(2.0)
        # stderr = 1/sqrt(3), t(0.95, df=2) = 4.303
        assert half == pytest.approx(4.303 / 3 ** 0.5, rel=1e-6)

    def test_identical_samples_have_zero_width(self):
        _mean, half = confidence_interval([5.0] * 10)
        assert half == 0.0


class TestExtrapolate:
    def test_no_windows(self):
        out = extrapolate([], total_instructions=1000)
        assert out["windows"] == 0
        assert out["cycles"] == 0
        assert out["cycles_low"] == 0 and out["cycles_high"] == 0

    def test_empty_windows_dropped(self):
        out = extrapolate([window(0, 0, 0)], 1000)
        assert out["windows"] == 0

    def test_full_coverage_is_exact(self):
        # Windows tile the whole instruction stream: nothing to
        # reconstruct, the "extrapolation" is the measured total.
        out = extrapolate([window(0, 500, 1000), window(500, 500, 1500)],
                          total_instructions=1000)
        assert out["cycles"] == 2500
        assert out["measured_cycles"] == 2500

    def test_gaps_costed_at_neighbour_cpi(self):
        # One window of CPI 2 covering half the stream; the leading and
        # trailing gaps are costed at that same (only) neighbour CPI.
        out = extrapolate([window(250, 500, 1000)],
                          total_instructions=1000)
        assert out["cycles"] == 1000 + 500 * 2  # 500 gap instructions
        assert out["windows"] == 1

    def test_heterogeneous_gaps_use_local_cpi(self):
        # Serial window (CPI 4) then parallel window (CPI 1).  The gap
        # between them pools both neighbours; the tail uses the last.
        windows = [window(0, 100, 400), window(200, 100, 100)]
        out = extrapolate(windows, total_instructions=400)
        gap_cpi = (400 + 100) / 200  # pooled neighbours = 2.5
        expected = 400 + 100 + 100 * gap_cpi + 100 * 1.0
        assert out["cycles"] == int(round(expected))

    def test_single_window_has_degenerate_ci(self):
        out = extrapolate([window(0, 100, 200)], 1000)
        assert out["cpi_half_width"] == 0.0
        assert out["cycles_low"] == out["cycles"] == out["cycles_high"]

    def test_ci_brackets_estimate(self):
        windows = [window(0, 100, 180), window(300, 100, 220),
                   window(600, 100, 200)]
        out = extrapolate(windows, total_instructions=1000)
        assert out["cycles_low"] <= out["cycles"] <= out["cycles_high"]
        assert out["cycles_low"] >= out["measured_cycles"]

    def test_identical_cpi_windows_give_tight_ci(self):
        windows = [window(i * 200, 100, 200) for i in range(4)]
        out = extrapolate(windows, total_instructions=1000)
        assert out["cpi_half_width"] == pytest.approx(0.0)
        assert out["cycles_low"] == out["cycles"] == out["cycles_high"]
