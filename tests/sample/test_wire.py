"""Execution mode on the wire: SET_MODE, handshake, schema manifest."""

import ast
import json
import pickle
from pathlib import Path

from repro.check.lint import (check_wire_manifest, package_root,
                              wire_fingerprint)
from repro.distrib.wire import (WIRE_VERSION, FrameKind, decode_frame,
                                encode_frame)
from repro.net.handshake import WIRE_VERSION as NET_WIRE_VERSION
from repro.net.handshake import Welcome


class TestSetModeFrame:
    def test_round_trip(self):
        for functional in (True, False):
            blob = encode_frame(FrameKind.SET_MODE, functional)
            kind, payload = decode_frame(blob)
            assert kind is FrameKind.SET_MODE
            assert payload is functional

    def test_wire_version_covers_set_mode(self):
        assert WIRE_VERSION >= 6

    def test_conformance_manifest_lists_set_mode(self):
        """SET_MODE is a coordinator-side cast; the protocol manifest
        (check/wire_proto.json) must say so on both roles."""
        proto = json.loads(
            (package_root() / "check" / "wire_proto.json").read_text())
        assert "SET_MODE" in proto["roles"]["coordinator"]["sends"]

        def edges(role):
            return [edge
                    for phase in
                    proto["phases"][role]["transitions"].values()
                    for edge in phase]
        assert "send SET_MODE" in edges("coordinator")
        assert "recv SET_MODE" in edges("worker")


class TestExecModeState:
    def test_kernel_proxy_mode_pickles_with_shard(self):
        """A checkpoint taken mid-fast-forward must resume functional:
        the flag is plain pickled state, not reconstructed."""
        from repro.common.config import SimulationConfig
        from repro.distrib.worker import KernelProxy
        config = SimulationConfig(num_tiles=2)
        config.validate()
        proxy = KernelProxy.__new__(KernelProxy)
        proxy.config = config
        proxy.exec_functional = True
        clone = pickle.loads(pickle.dumps(
            {"config": proxy.config,
             "exec_functional": proxy.exec_functional}))
        assert clone["exec_functional"] is True

    def test_old_snapshots_default_to_detailed(self):
        """Shards pickled before wire v6 lack the attribute; readers
        use ``getattr(..., False)`` so they come back detailed."""
        class OldShard:
            pass
        shard = OldShard()
        assert bool(getattr(shard, "exec_functional", False)) is False


class TestHandshakeMode:
    def test_welcome_defaults_detailed(self):
        welcome = Welcome(role="listener", net_version=NET_WIRE_VERSION,
                          wire_version=WIRE_VERSION,
                          config_fingerprint="f" * 16)
        assert welcome.mode == "detailed"

    def test_net_version_covers_mode(self):
        assert NET_WIRE_VERSION >= 3

    def test_listener_tracks_cluster_mode(self):
        from repro.net.listener import NetListener
        listener = NetListener.__new__(NetListener)
        listener.mode = "detailed"
        assert listener.mode == "detailed"


class TestSchemaManifest:
    """W001 drift guards for the new frame and handshake field."""

    def _check(self, rel: str, record_key) -> list:
        root = package_root()
        path = root / rel
        tree = ast.parse(path.read_text())
        return check_wire_manifest(tree, str(path),
                                   record_key=record_key)

    def test_shipped_manifest_is_current(self):
        """The checked-in wire_schema.json matches the live modules —
        i.e. the SET_MODE/mode additions were accepted via
        ``repro check --accept-wire-schema``."""
        assert self._check("distrib/wire.py", None) == []
        assert self._check("net/handshake.py", "net") == []

    def test_mode_field_is_fingerprinted(self, tmp_path):
        """Removing ``Welcome.mode`` must change the net fingerprint:
        the manifest actually covers the new field."""
        root = package_root()
        source = (root / "net" / "handshake.py").read_text()
        fingerprint, _ = wire_fingerprint(ast.parse(source))
        stripped = source.replace('    mode: str = "detailed"\n', "")
        assert stripped != source
        stripped_fp, _ = wire_fingerprint(ast.parse(stripped))
        assert stripped_fp != fingerprint

    def test_stale_manifest_flags_drift(self, tmp_path):
        root = package_root()
        path = root / "distrib" / "wire.py"
        tree = ast.parse(path.read_text())
        _, version = wire_fingerprint(tree)
        stale = tmp_path / "schema.json"
        stale.write_text(json.dumps(
            {"wire_version": version, "fingerprint": "0" * 16}))
        findings = check_wire_manifest(tree, str(path), stale,
                                       record_key=None)
        assert [finding.rule for finding in findings] == ["W001"]

    def test_accept_then_check_clean(self, tmp_path):
        from repro.check.lint import accept_wire_schema
        schema = tmp_path / "schema.json"
        accept_wire_schema(schema_path=schema)
        root = package_root()
        for rel, key in (("distrib/wire.py", None),
                         ("net/handshake.py", "net")):
            path = root / Path(rel)
            tree = ast.parse(path.read_text())
            findings = check_wire_manifest(tree, str(path), schema,
                                           record_key=key)
            assert findings == []
