"""End-to-end serve daemon tests: the ISSUE's acceptance demos.

Each test runs a real daemon (forked worker fleet, Unix socket) and a
real client.  The load-bearing assertions are byte-level: a served
result equals the canonical bytes of a direct in-process run of the
same job — for plain runs, for cache hits, and for a job that was
checkpoint-preempted mid-flight and resumed.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import signal
import tempfile
import time

import pytest

from repro.common.config import SimulationConfig, TelemetryConfig
from repro.common.errors import ServeError
from repro.distrib.wire import WorkloadRef
from repro.serve.client import ServeClient
from repro.serve.daemon import SimServer
from repro.serve.store import canonical_result_bytes
from repro.sim.simulator import Simulator

#: Problem size that runs in ~tens of milliseconds.
FAST_SCALE = 0.05
#: Problem size long enough (~1s) to be preempted or cancelled.
LONG_SCALE = 10.0


def _config(seed: int) -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=2, seed=seed)
    cfg.host.quantum_instructions = 200
    return cfg


def _direct_bytes(seed: int, workload: str, scale: float) -> bytes:
    """Canonical bytes of an undisturbed in-process run."""
    result = Simulator(_config(seed)).run(
        WorkloadRef(workload, 2, scale))
    return canonical_result_bytes(result)


@contextlib.contextmanager
def running_server(**kwargs):
    # A short tempdir, not pytest's tmp_path: the spool holds an
    # AF_UNIX socket and those paths cap out around 107 characters.
    root = tempfile.mkdtemp(dir="/tmp", prefix="rs-")
    server = SimServer(root, **kwargs).start()
    client = ServeClient(server.socket_path)
    try:
        client.wait_up()
        yield server, client
    finally:
        server.stop()
        shutil.rmtree(root, ignore_errors=True)


def _kill_once_program(ctx, flag_path):
    """Takes its worker down with it on the first attempt only."""
    yield from ctx.compute(50)
    if not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    yield from ctx.compute(50)


def _always_kill_program(ctx):
    yield from ctx.compute(50)
    os.kill(os.getpid(), signal.SIGKILL)
    yield from ctx.compute(1)  # pragma: no cover - never reached


def test_fleet_serves_concurrent_submissions_byte_identical():
    """One fleet, four concurrent submissions, every served result
    byte-identical to its direct in-process run."""
    with running_server(fleet=2) as (server, client):
        seeds = [11, 12, 13, 14]
        views = [client.submit(config=_config(seed),
                               workload="matrix_multiply", nthreads=2,
                               scale=FAST_SCALE)
                 for seed in seeds]
        finals = [client.wait(view["job_id"], timeout=120)
                  for view in views]
        assert [v["state"] for v in finals] == ["done"] * 4
        for seed, view in zip(seeds, views):
            served = client.fetch_result(view["job_id"])
            assert canonical_result_bytes(served) == _direct_bytes(
                seed, "matrix_multiply", FAST_SCALE)
        stats = client.stats()
        assert stats["submitted"] == 4
        assert stats["states"] == {"done": 4}


def test_duplicate_submission_is_a_cache_hit():
    with running_server(fleet=1) as (server, client):
        first = client.submit(config=_config(21),
                              workload="matrix_multiply", nthreads=2,
                              scale=FAST_SCALE)
        client.wait(first["job_id"], timeout=120)
        second = client.submit(config=_config(21),
                               workload="matrix_multiply", nthreads=2,
                               scale=FAST_SCALE)
        # Provably-correct hit: same key, state cached, never queued.
        assert second["state"] == "cached"
        assert second["key"] == first["key"]
        assert second["attempts"] == 0
        a = client.fetch_result(first["job_id"])
        b = client.fetch_result(second["job_id"])
        assert canonical_result_bytes(a) == canonical_result_bytes(b)
        assert client.stats()["cache_hits"] == 1


def test_seed_flip_misses_the_cache():
    with running_server(fleet=1) as (server, client):
        first = client.submit(config=_config(31),
                              workload="matrix_multiply", nthreads=2,
                              scale=FAST_SCALE)
        client.wait(first["job_id"], timeout=120)
        flipped = client.submit(config=_config(32),
                                workload="matrix_multiply", nthreads=2,
                                scale=FAST_SCALE)
        assert flipped["state"] != "cached"
        assert flipped["key"] != first["key"]
        assert client.wait(flipped["job_id"],
                           timeout=120)["state"] == "done"
        assert client.stats()["cache_hits"] == 0


def test_preempted_job_resumes_byte_identical():
    """A higher-priority arrival checkpoints the runner off its single
    worker; the preempted job later resumes and finishes with a result
    byte-identical to an undisturbed run."""
    with running_server(fleet=1) as (server, client):
        low = client.submit(config=_config(1),
                            workload="matrix_multiply", nthreads=2,
                            scale=LONG_SCALE, priority=0)
        deadline = time.monotonic() + 30
        while client.status(low["job_id"])["state"] != "running":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.01)
        high = client.submit(config=_config(2), workload="fft",
                             nthreads=2, scale=0.1, priority=5)
        high_final = client.wait(high["job_id"], timeout=120)
        assert high_final["state"] == "done"
        low_final = client.wait(low["job_id"], timeout=300)
        assert low_final["state"] == "done"
        assert low_final["preemptions"] >= 1
        assert client.stats()["preemptions"] >= 1
        served = client.fetch_result(low["job_id"])
        assert canonical_result_bytes(served) == _direct_bytes(
            1, "matrix_multiply", LONG_SCALE)


def test_dead_worker_requeues_job_within_budget(tmp_path):
    """A worker SIGKILLed mid-job is respawned and the job retried —
    the sweep pool's requeue-on-dead-child rule, per job."""
    flag = str(tmp_path / "died-once")
    with running_server(fleet=1) as (server, client):
        view = client.submit(config=_config(41),
                             program=_kill_once_program,
                             args=(flag,))
        final = client.wait(view["job_id"], timeout=120)
        assert final["state"] == "done"
        assert final["deaths"] == 1
        assert final["attempts"] == 2
        assert client.stats()["worker_deaths"] >= 1


def test_retry_budget_exhaustion_fails_the_job():
    with running_server(fleet=1, max_attempts=2) as (server, client):
        view = client.submit(config=_config(42),
                             program=_always_kill_program)
        final = client.wait(view["job_id"], timeout=120)
        assert final["state"] == "failed"
        assert final["deaths"] == 2
        assert "retry budget" in final["error"]
        # The fleet survives its losses: the next job still runs.
        follow = client.submit(config=_config(43),
                               workload="matrix_multiply", nthreads=2,
                               scale=FAST_SCALE)
        assert client.wait(follow["job_id"],
                           timeout=120)["state"] == "done"


def test_cancel_queued_and_running_jobs():
    with running_server(fleet=1) as (server, client):
        runner = client.submit(config=_config(51),
                               workload="matrix_multiply", nthreads=2,
                               scale=LONG_SCALE)
        queued = client.submit(config=_config(52),
                               workload="matrix_multiply", nthreads=2,
                               scale=FAST_SCALE)
        # Cancelling a queued job fails it immediately.
        view = client.cancel(queued["job_id"])
        assert view["state"] == "failed"
        assert view["error"] == "cancelled by client"
        # Cancelling the runner rides the preemption path.
        client.cancel(runner["job_id"])
        final = client.wait(runner["job_id"], timeout=120)
        assert final["state"] == "failed"
        assert final["error"] == "cancelled by client"
        # Terminal jobs cannot be re-cancelled; unknown ids are errors.
        with pytest.raises(ServeError, match="already failed"):
            client.cancel(runner["job_id"])
        with pytest.raises(ServeError, match="unknown job"):
            client.cancel("job-999999")


def test_submit_validation_errors():
    with running_server(fleet=1) as (server, client):
        with pytest.raises(ServeError, match="unknown workload"):
            client.submit(config=_config(1), workload="not-a-workload")
        with pytest.raises(ServeError, match="exactly one"):
            client.submit(config=_config(1))
        with pytest.raises(ServeError, match="bad job config"):
            client.request("submit", {
                "config": {"num_tiles": 0}, "workload": "fft"})
        with pytest.raises(ServeError, match="not fetchable"):
            view = client.submit(config=_config(1), workload="fft",
                                 nthreads=2, scale=LONG_SCALE)
            client.fetch(view["job_id"])


def test_job_states_surface_on_the_telemetry_bus():
    telemetry = TelemetryConfig(enabled=True, events=["serve"])
    with running_server(fleet=1, telemetry=telemetry) \
            as (server, client):
        view = client.submit(config=_config(61),
                             workload="matrix_multiply", nthreads=2,
                             scale=FAST_SCALE)
        client.wait(view["job_id"], timeout=120)
        client.submit(config=_config(61), workload="matrix_multiply",
                      nthreads=2, scale=FAST_SCALE)
        names = {event.name for event in server.bus.events}
        assert {"server.started", "worker.spawned", "job.submitted",
                "job.started", "job.done", "job.cached"} <= names
        categories = {event.category_name
                      for event in server.bus.events}
        assert categories == {"serve"}


def test_status_list_and_ping_verbs():
    with running_server(fleet=1) as (server, client):
        assert client.ping()["protocol"] == 2
        assert client.alive()
        view = client.submit(config=_config(71),
                             workload="matrix_multiply", nthreads=2,
                             scale=FAST_SCALE)
        client.wait(view["job_id"], timeout=120)
        jobs = client.list_jobs()
        assert [job["job_id"] for job in jobs] == [view["job_id"]]
        with pytest.raises(ServeError, match="unknown job"):
            client.status("job-424242")


def test_cli_verbs_against_a_live_daemon(capsys):
    """The repro submit/status/fetch CLI speaks to a real daemon."""
    from repro.cli import main
    with running_server(fleet=1) as (server, client):
        spool = server.root
        assert main(["submit", "--dir", spool,
                     "--workload", "matrix_multiply", "--tiles", "2",
                     "--scale", str(FAST_SCALE), "--seed", "81",
                     "--quantum", "200", "--wait"]) == 0
        out = capsys.readouterr().out
        assert "done" in out
        job_id = out.split()[0]
        assert main(["status", "--dir", spool]) == 0
        status_out = capsys.readouterr().out
        assert job_id in status_out
        assert "submitted=1" in status_out
        assert main(["fetch", "--dir", spool, job_id]) == 0
        fetch_out = capsys.readouterr().out
        assert "simulated cycles" in fetch_out


def test_cli_fails_cleanly_without_a_daemon(capsys):
    from repro.cli import main
    root = tempfile.mkdtemp(dir="/tmp", prefix="rs-")
    try:
        assert main(["status", "--dir", root]) == 1
        assert "cannot reach serve daemon" in capsys.readouterr().err
        assert main(["serve", "--dir", root, "--stop"]) == 1
    finally:
        shutil.rmtree(root, ignore_errors=True)
