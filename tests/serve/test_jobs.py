"""Job-queue tests: priority order, FIFO fairness, requeue, removal."""

from __future__ import annotations

from repro.common.config import SimulationConfig
from repro.serve.jobs import QUEUED, JobQueue, ServeJob


def _job(queue: JobQueue, job_id: str, priority: int = 0) -> ServeJob:
    job = ServeJob(job_id=job_id, key=f"key-{job_id}",
                   config=SimulationConfig(num_tiles=2), program=None,
                   priority=priority, seqno=queue.next_seqno())
    queue.push(job)
    return job


def _drain(queue: JobQueue):
    out = []
    while True:
        job = queue.pop()
        if job is None:
            return out
        out.append(job.job_id)


def test_fifo_within_one_priority_class():
    queue = JobQueue()
    for name in ("a", "b", "c"):
        _job(queue, name)
    assert _drain(queue) == ["a", "b", "c"]


def test_higher_priority_runs_earlier():
    queue = JobQueue()
    _job(queue, "low", priority=0)
    _job(queue, "high", priority=5)
    _job(queue, "mid", priority=2)
    assert _drain(queue) == ["high", "mid", "low"]


def test_fifo_inside_each_priority_class():
    queue = JobQueue()
    _job(queue, "l1", 0)
    _job(queue, "h1", 3)
    _job(queue, "l2", 0)
    _job(queue, "h2", 3)
    assert _drain(queue) == ["h1", "h2", "l1", "l2"]


def test_requeue_keeps_original_fifo_position():
    queue = JobQueue()
    first = _job(queue, "first")
    _job(queue, "second")
    popped = queue.pop()
    assert popped is first
    _job(queue, "third")
    # Preempted/crash-requeued work resumes ahead of later arrivals.
    queue.requeue(first)
    assert _drain(queue) == ["first", "second", "third"]


def test_remove_cancels_a_queued_job():
    queue = JobQueue()
    _job(queue, "keep")
    _job(queue, "drop")
    assert queue.remove("drop") is True
    assert queue.remove("drop") is False
    assert queue.remove("never-queued") is False
    assert _drain(queue) == ["keep"]


def test_len_and_peek_skip_removed_entries():
    queue = JobQueue()
    _job(queue, "a")
    b = _job(queue, "b")
    assert len(queue) == 2
    queue.remove("a")
    assert len(queue) == 1
    assert queue.peek() is b
    assert queue.pop() is b
    assert queue.peek() is None
    assert len(queue) == 0


def test_fresh_jobs_start_queued_with_budget():
    queue = JobQueue()
    job = _job(queue, "j")
    assert job.state == QUEUED
    assert not job.finished
    assert job.deaths == 0
    view = job.view()
    assert view.job_id == "j"
    assert view.state == QUEUED
