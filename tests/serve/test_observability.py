"""repro.obs acceptance: span trees, the metrics endpoint, flight dumps.

The ISSUE's acceptance demos against a live daemon:

* a served job that is preempted, runs on a TCP-remote worker and
  resumes yields ONE causally-connected span tree — a single trace id,
  no orphan spans, every lifecycle phase a child of the job root;
* the ``metrics`` verb serves live fleet gauges both structured and in
  Prometheus text exposition, and ``repro top`` renders them;
* a SIGKILLed fleet worker leaves a flight-recorder bundle naming the
  dead worker.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import shutil
import signal
import tempfile
import time

from repro.common.config import SimulationConfig, TelemetryConfig
from repro.distrib.wire import WIRE_VERSION
from repro.obs.flight import load_bundles
from repro.obs.spans import build_span_tree, orphan_spans
from repro.serve.client import ServeClient
from repro.serve.daemon import SimServer

FAST_SCALE = 0.05
LONG_SCALE = 10.0


def _config(seed: int) -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=2, seed=seed)
    cfg.host.quantum_instructions = 200
    return cfg


def _obs_telemetry(**kwargs) -> TelemetryConfig:
    return TelemetryConfig(enabled=True, events=["serve", "obs"],
                           **kwargs)


@contextlib.contextmanager
def running_server(**kwargs):
    # Short tempdir: AF_UNIX socket paths cap out around 107 chars.
    root = tempfile.mkdtemp(dir="/tmp", prefix="ro-")
    server = SimServer(root, **kwargs).start()
    client = ServeClient(server.socket_path)
    try:
        client.wait_up()
        yield server, client
    finally:
        server.stop()
        shutil.rmtree(root, ignore_errors=True)


def _remote_worker_main(address: str) -> None:
    from repro.net.listener import connect_worker
    from repro.serve.remote import run_remote_fleet_worker
    channel, welcome = connect_worker(address, WIRE_VERSION,
                                      timeout=10.0)
    run_remote_fleet_worker(channel)


def _dial_worker(address: str) -> multiprocessing.Process:
    proc = multiprocessing.get_context("fork").Process(
        target=_remote_worker_main, args=(address,), daemon=True)
    proc.start()
    return proc


def _reap(proc) -> None:
    if proc is not None and proc.is_alive():
        proc.terminate()
        proc.join(timeout=5.0)


def _wait_until(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, what
        time.sleep(0.02)


def _span_events(server: SimServer):
    return [event for event in server.bus.events
            if event.name.startswith("span.")]


def _kill_once_program(ctx, flag_path):
    yield from ctx.compute(50)
    if not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    yield from ctx.compute(50)


# -- distributed tracing ------------------------------------------------------


def test_preempted_migrated_resumed_job_is_one_span_tree():
    """THE tracing acceptance demo: submit to a single TCP-remote
    slot, preempt with a higher-priority job, resume — the whole
    lifecycle is one connected tree under one trace id."""
    proc = None
    try:
        with running_server(fleet=0, listen="127.0.0.1:0",
                            telemetry=_obs_telemetry()) \
                as (server, client):
            proc = _dial_worker(server.listen_address)
            _wait_until(lambda: server.workers, 10,
                        "remote worker never joined")
            low = client.submit(config=_config(1),
                                workload="matrix_multiply", nthreads=2,
                                scale=LONG_SCALE, priority=0)
            assert low["trace_id"], "submit reply carries the trace id"
            _wait_until(lambda: client.status(
                low["job_id"])["state"] == "running", 30,
                "job never started")
            high = client.submit(config=_config(2), workload="fft",
                                 nthreads=2, scale=0.1, priority=5)
            assert client.wait(high["job_id"],
                               timeout=120)["state"] == "done"
            low_final = client.wait(low["job_id"], timeout=300)
            assert low_final["state"] == "done"
            assert low_final["preemptions"] >= 1
            assert low_final["trace_id"] == low["trace_id"]

            events = _span_events(server)
            tree = build_span_tree(events)
            assert orphan_spans(events) == []
            # Two traces total (low and high), each with its own root.
            assert set(tree["traces"]) == {low["trace_id"],
                                           high["trace_id"]}
            spans = tree["spans"]
            low_spans = {sid: s for sid, s in spans.items()
                         if s["trace"] == low["trace_id"]}
            roots = [sid for sid in tree["roots"] if sid in low_spans]
            assert len(roots) == 1, "one connected tree per job"
            root = roots[0]
            assert low_spans[root]["op"] == "job"
            assert low_spans[root]["outcome"] == "done"
            # Every other span of the trace hangs off the root.
            assert set(tree["children"][root]) == \
                set(low_spans) - {root}
            # queue → run(preempted) → queue(resumed) → run(done).
            runs = [s for s in low_spans.values() if s["op"] == "run"]
            queues = [s for s in low_spans.values()
                      if s["op"] == "queue"]
            assert sorted(s["outcome"] for s in runs) == \
                ["done", "preempted"]
            assert len(queues) == 2
            assert any(s["args"].get("resumed") for s in queues)
            resumed_run = [s for s in runs
                           if s["args"].get("resumed")]
            assert len(resumed_run) == 1
            assert resumed_run[0]["outcome"] == "done"
            # The preempt request is an instant note on the root span.
            notes = low_spans[root].get("notes", [])
            assert any(n["note"] == "preempt.request" for n in notes)
            assert all(s["ended"] for s in low_spans.values())
        proc.join(timeout=30.0)
    finally:
        _reap(proc)


def test_cached_submission_gets_its_own_closed_trace():
    with running_server(fleet=1, telemetry=_obs_telemetry()) \
            as (server, client):
        first = client.submit(config=_config(21),
                              workload="matrix_multiply", nthreads=2,
                              scale=FAST_SCALE)
        client.wait(first["job_id"], timeout=120)
        second = client.submit(config=_config(21),
                               workload="matrix_multiply", nthreads=2,
                               scale=FAST_SCALE)
        assert second["state"] == "cached"
        events = _span_events(server)
        spans = build_span_tree(events)["spans"]
        cached = [s for s in spans.values()
                  if s["trace"] == second["trace_id"]
                  and s["op"] == "job"]
        assert len(cached) == 1
        assert cached[0]["outcome"] == "cached"
        assert orphan_spans(events) == []


# -- live fleet metrics -------------------------------------------------------


def test_metrics_verb_serves_fields_and_prometheus_text():
    with running_server(fleet=1) as (server, client):
        view = client.submit(config=_config(31),
                             workload="matrix_multiply", nthreads=2,
                             scale=FAST_SCALE)
        client.wait(view["job_id"], timeout=120)
        client.submit(config=_config(31), workload="matrix_multiply",
                      nthreads=2, scale=FAST_SCALE)  # cache hit
        payload = client.metrics()
        fields = payload["fields"]
        assert fields["submitted"] == 2
        assert fields["cache_hits"] == 1
        assert fields["jobs"]["done"] == 1
        assert fields["jobs"]["cached"] == 1
        assert fields["workers"]["busy"] + fields["workers"]["idle"] == 1
        assert fields["uptime_seconds"] > 0
        # The same snapshot, rendered for scrapers.
        text = payload["text"]
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_submitted_total 2" in text
        assert "repro_serve_cache_hits_total 1" in text
        assert 'repro_serve_jobs{state="done"} 1' in text
        # One assignment left the queue: its wait time is accounted.
        assert 'repro_serve_wait_jobs_total{priority="0"} 1' in text
        assert 'repro_serve_worker_jobs_total{worker="0"} 1' in text


def test_repro_top_cli_once_and_prom(capsys):
    from repro.cli import main
    with running_server(fleet=1) as (server, client):
        view = client.submit(config=_config(41),
                             workload="matrix_multiply", nthreads=2,
                             scale=FAST_SCALE)
        client.wait(view["job_id"], timeout=120)
        assert main(["top", "--dir", server.root, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro serve fleet" in out
        assert "submitted 1" in out
        assert main(["top", "--dir", server.root, "--prom"]) == 0
        prom = capsys.readouterr().out
        assert "repro_serve_submitted_total 1" in prom
        assert prom.endswith("\n")


def test_repro_top_fails_cleanly_without_a_daemon(capsys):
    from repro.cli import main
    root = tempfile.mkdtemp(dir="/tmp", prefix="ro-")
    try:
        assert main(["top", "--dir", root, "--once"]) == 1
        assert main(["top", "--dir", root, "--prom"]) == 1
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_metrics_interval_emits_fleet_samples():
    telemetry = TelemetryConfig(enabled=True,
                                events=["serve", "metrics"],
                                metrics_interval=1)
    with running_server(fleet=1, telemetry=telemetry) \
            as (server, client):
        view = client.submit(config=_config(51),
                             workload="matrix_multiply", nthreads=2,
                             scale=FAST_SCALE)
        client.wait(view["job_id"], timeout=120)
        _wait_until(
            lambda: any(e.name == "fleet.sample"
                        for e in server.bus.events),
            15, "no fleet.sample event within the cadence")
        sample = next(e for e in server.bus.events
                      if e.name == "fleet.sample")
        assert sample.category_name == "metrics"
        assert "queue_depth" in sample.args


# -- crash flight recorder ----------------------------------------------------


def test_worker_sigkill_dumps_a_flight_bundle(tmp_path):
    """A fleet worker dying violently leaves a forensics bundle that
    names the dead worker, its job and the job's trace."""
    flag = str(tmp_path / "died-once")
    flight_dir = str(tmp_path / "flight")
    telemetry = _obs_telemetry(flight_dir=flight_dir)
    with running_server(fleet=1, telemetry=telemetry) \
            as (server, client):
        view = client.submit(config=_config(61),
                             program=_kill_once_program, args=(flag,))
        final = client.wait(view["job_id"], timeout=120)
        assert final["state"] == "done"
        assert final["deaths"] == 1
        bundles = load_bundles(flight_dir)
        assert len(bundles) == 1
        (bundle,) = bundles
        assert bundle["reason"] == "worker.died"
        assert bundle["extra"]["worker"] == 0
        assert bundle["extra"]["job"] == view["job_id"]
        assert bundle["extra"]["trace"] == view["trace_id"]
        assert "worker 0 died" in bundle["detail"]
        # The ring captured the story leading up to the death.
        names = [event["name"] for event in bundle["events"]]
        assert "job.submitted" in names
        assert all(event["cat"] in ("serve", "obs")
                   for event in bundle["events"])
