"""Serve protocol tests: frame round trips, versioning, socket flow."""

from __future__ import annotations

import json
import socket

import pytest

from repro.common.errors import ServeError
from repro.serve import protocol
from repro.serve.protocol import (
    JOB_STATES,
    TERMINAL_STATES,
    JobView,
    ServerInfo,
    SubmitSpec,
    decode_frame,
    encode_frame,
    recv_message,
    send_message,
    try_recv_message,
    view_payload,
)


class TestFrames:
    def test_round_trip(self):
        kind, payload = decode_frame(encode_frame(
            "submit", {"workload": "fft", "priority": 3}))
        assert kind == "submit"
        assert payload == {"workload": "fft", "priority": 3}

    def test_frames_are_canonical_bytes(self):
        # Same message, same bytes — key order cannot leak in.
        a = encode_frame("status", {"b": 1, "a": 2})
        b = encode_frame("status", {"a": 2, "b": 1})
        assert a == b

    def test_version_travels_in_every_frame(self):
        data = json.loads(encode_frame("ping", {}).decode())
        assert data["v"] == protocol.WIRE_VERSION

    def test_version_mismatch_fails_loudly(self):
        blob = json.dumps({"v": protocol.WIRE_VERSION + 1,
                           "kind": "ping", "payload": {}}).encode()
        with pytest.raises(ServeError, match="version mismatch"):
            decode_frame(blob)

    @pytest.mark.parametrize("blob", [
        b"not json",
        b"[1,2,3]",
        json.dumps({"kind": "ping", "payload": {}}).encode(),
        json.dumps({"v": protocol.WIRE_VERSION,
                    "payload": {}}).encode(),
        json.dumps({"v": protocol.WIRE_VERSION, "kind": "ping",
                    "payload": [1]}).encode(),
    ])
    def test_malformed_frames_rejected(self, blob):
        with pytest.raises(ServeError):
            decode_frame(blob)

    def test_unencodable_payload_raises(self):
        with pytest.raises(ServeError, match="cannot encode"):
            encode_frame("submit", {"bad": object()})


class TestSocketFlow:
    def test_message_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_message(a, "submit", {"workload": "radix"})
            assert recv_message(b) == ("submit", {"workload": "radix"})
            send_message(b, "ok", {"job": {"job_id": "job-000001"}})
            assert recv_message(a) == (
                "ok", {"job": {"job_id": "job-000001"}})
        finally:
            a.close()
            b.close()

    def test_clean_close_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert try_recv_message(b) is None
        finally:
            b.close()


class TestSchema:
    def test_job_states_cover_the_lifecycle(self):
        assert JOB_STATES == ("queued", "running", "preempted", "done",
                              "failed", "cached")
        assert set(TERMINAL_STATES) < set(JOB_STATES)

    def test_views_flatten_to_json_safe_payloads(self):
        view = JobView(job_id="job-000001", state="done", key="k")
        payload = view_payload(view)
        assert json.loads(json.dumps(payload)) == payload
        info = ServerInfo(protocol=1, fleet=2, states={"done": 1})
        assert json.loads(json.dumps(view_payload(info))) \
            == view_payload(info)

    def test_submit_spec_round_trips_through_a_frame(self):
        spec = SubmitSpec(config={"seed": 9}, workload="fft",
                          nthreads=4, scale=0.5, priority=2)
        kind, payload = decode_frame(
            encode_frame("submit", view_payload(spec)))
        assert SubmitSpec(**payload) == spec
