"""Remote serve fleet (``--listen``) and stale-socket recovery.

The remote slots ride the exact pump policies of the forked fleet —
assignment, preemption, retry — over a TCP channel, so every served
result must stay byte-identical to a direct in-process run, and a
vanished remote host must surrender its slot but not its job.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import shutil
import socket
import tempfile
import time

import pytest

from repro.common.config import SimulationConfig, TelemetryConfig
from repro.common.errors import ServeError
from repro.distrib.wire import WIRE_VERSION, WorkloadRef
from repro.serve.client import ServeClient
from repro.serve.daemon import SimServer
from repro.serve.store import canonical_result_bytes
from repro.sim.simulator import Simulator

FAST_SCALE = 0.05
LONG_SCALE = 10.0


def _config(seed: int) -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=2, seed=seed)
    cfg.host.quantum_instructions = 200
    return cfg


def _direct_bytes(seed: int, workload: str, scale: float) -> bytes:
    result = Simulator(_config(seed)).run(WorkloadRef(workload, 2, scale))
    return canonical_result_bytes(result)


def _remote_worker_main(address: str) -> None:
    """What ``repro worker --connect`` does once welcomed by a daemon."""
    from repro.net.listener import connect_worker
    from repro.serve.remote import run_remote_fleet_worker
    channel, welcome = connect_worker(address, WIRE_VERSION,
                                      timeout=10.0)
    assert welcome.role == "serve"
    run_remote_fleet_worker(channel)


def _dial_worker(address: str) -> multiprocessing.Process:
    proc = multiprocessing.get_context("fork").Process(
        target=_remote_worker_main, args=(address,), daemon=True)
    proc.start()
    return proc


@contextlib.contextmanager
def running_server(**kwargs):
    # Short tempdir: AF_UNIX socket paths cap out around 107 chars.
    root = tempfile.mkdtemp(dir="/tmp", prefix="rr-")
    server = SimServer(root, **kwargs).start()
    client = ServeClient(server.socket_path)
    try:
        client.wait_up()
        yield server, client
    finally:
        server.stop()
        shutil.rmtree(root, ignore_errors=True)


def _wait_for_fleet(server: SimServer, count: int,
                    timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while len(server.workers) < count:
        assert time.monotonic() < deadline, "remote worker never joined"
        time.sleep(0.02)


def _die_once_program(ctx, flag_path):
    """Takes its (remote) worker down with it on the first attempt."""
    yield from ctx.compute(50)
    if not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        os.kill(os.getpid(), 9)
    yield from ctx.compute(50)


# -- stale Unix sockets ------------------------------------------------------


def test_stale_socket_is_probed_and_rebound():
    """A socket file left by a dead daemon is unlinked (after a probe
    confirms nobody answers) and the new daemon binds normally."""
    root = tempfile.mkdtemp(dir="/tmp", prefix="rr-")
    try:
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(os.path.join(root, "serve.sock"))
        stale.close()  # no listen(): the file stays, nobody answers
        server = SimServer(root, fleet=1).start()
        try:
            client = ServeClient(server.socket_path)
            client.wait_up()
            assert client.ping()["fleet"] == 1
        finally:
            server.stop()
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_live_daemon_socket_is_never_hijacked():
    """The probe distinguishes stale from live: a second daemon on a
    spool that is actually being served fails loudly."""
    with running_server(fleet=1) as (server, _client):
        with pytest.raises(ServeError, match="already listening"):
            SimServer(server.root, fleet=1).start()
        # The refused daemon must not have broken the live one.
        probe = ServeClient(server.socket_path)
        assert probe.alive()


# -- remote fleet workers ----------------------------------------------------


def _reap(proc: multiprocessing.Process) -> None:
    if proc is not None and proc.is_alive():
        proc.terminate()
        proc.join(timeout=5.0)


def test_remote_worker_serves_jobs_byte_identical():
    telemetry = TelemetryConfig(enabled=True, events=["serve"])
    proc = None
    try:
        with running_server(fleet=0, listen="127.0.0.1:0",
                            telemetry=telemetry) as (server, client):
            assert server.listen_address is not None
            proc = _dial_worker(server.listen_address)
            _wait_for_fleet(server, 1)
            view = client.submit(config=_config(91),
                                 workload="matrix_multiply",
                                 nthreads=2, scale=FAST_SCALE)
            final = client.wait(view["job_id"], timeout=120)
            assert final["state"] == "done"
            served = client.fetch_result(view["job_id"])
            assert canonical_result_bytes(served) == _direct_bytes(
                91, "matrix_multiply", FAST_SCALE)
            names = {event.name for event in server.bus.events}
            assert "worker.joined" in names
        # server.stop() (context exit) sent the shutdown frame.
        proc.join(timeout=30.0)
        assert proc.exitcode == 0  # clean shutdown frame honoured
    finally:
        _reap(proc)


def test_remote_preemption_rides_the_channel():
    """Preempting a remote slot has no side-band Event: the signal
    travels the job channel and the resumed job stays byte-identical."""
    proc = None
    try:
        with running_server(fleet=0, listen="127.0.0.1:0") \
                as (server, client):
            proc = _dial_worker(server.listen_address)
            _wait_for_fleet(server, 1)
            low = client.submit(config=_config(1),
                                workload="matrix_multiply", nthreads=2,
                                scale=LONG_SCALE, priority=0)
            deadline = time.monotonic() + 30
            while client.status(low["job_id"])["state"] != "running":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.01)
            high = client.submit(config=_config(2), workload="fft",
                                 nthreads=2, scale=0.1, priority=5)
            assert client.wait(high["job_id"],
                               timeout=120)["state"] == "done"
            low_final = client.wait(low["job_id"], timeout=300)
            assert low_final["state"] == "done"
            assert low_final["preemptions"] >= 1
            served = client.fetch_result(low["job_id"])
            assert canonical_result_bytes(served) == _direct_bytes(
                1, "matrix_multiply", LONG_SCALE)
        proc.join(timeout=30.0)
    finally:
        _reap(proc)


def test_dead_remote_worker_loses_its_slot_not_the_job(tmp_path):
    """A remote host dying mid-job removes the slot (no respawn from
    here) and requeues the job; fresh capacity dialing in finishes it."""
    flag = str(tmp_path / "died-once")
    telemetry = TelemetryConfig(enabled=True, events=["serve"])
    first = second = None
    try:
        with running_server(fleet=0, listen="127.0.0.1:0",
                            telemetry=telemetry) as (server, client):
            first = _dial_worker(server.listen_address)
            _wait_for_fleet(server, 1)
            view = client.submit(config=_config(93),
                                 program=_die_once_program,
                                 args=(flag,))
            deadline = time.monotonic() + 30
            while not server.worker_deaths:
                assert time.monotonic() < deadline, "worker never died"
                time.sleep(0.02)
            # The dead slot leaves the fleet; the job stays queued.
            deadline = time.monotonic() + 10
            while server.workers:
                assert time.monotonic() < deadline, "slot never removed"
                time.sleep(0.02)
            second = _dial_worker(server.listen_address)
            final = client.wait(view["job_id"], timeout=120)
            assert final["state"] == "done"
            assert final["deaths"] == 1
            assert final["attempts"] == 2
            names = {event.name for event in server.bus.events}
            assert "worker.left" in names
        first.join(timeout=30.0)
        second.join(timeout=30.0)
    finally:
        _reap(first)
        _reap(second)
