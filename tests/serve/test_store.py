"""Result-store tests: canonical encoding, atomicity, job identity."""

from __future__ import annotations

import json

import pytest

from repro.common.config import SimulationConfig
from repro.common.errors import ServeError
from repro.distrib.wire import PickledProgram, WorkloadRef
from repro.serve.store import (
    FORMAT,
    ResultStore,
    canonical_result_bytes,
    job_key,
    program_descriptor,
    result_from_jsonable,
    result_to_jsonable,
)
from repro.sim.results import SimulationResult


def _result(cycles: int = 1000) -> SimulationResult:
    return SimulationResult(
        simulated_cycles=cycles,
        wall_clock_seconds=1.5,
        native_seconds=0.01,
        thread_cycles={0: cycles, 1: cycles - 7},
        thread_instructions={0: 400, 1: 380},
        counters={"transport.messages_sent": 12},
        thread_start_cycles={0: 0, 1: 55},
        core_busy_seconds={0: 0.7, 1: 0.6},
        skew_trace=[(10.0, 2.0, -1.0)],
        miss_breakdown={"cold": 3},
        main_result={"checksum": 42},
    )


def _ref():
    return WorkloadRef("matrix_multiply", 2, 0.05)


class TestCanonicalEncoding:
    def test_round_trip_is_lossless(self):
        original = _result()
        rebuilt = result_from_jsonable(result_to_jsonable(original))
        assert rebuilt == original
        # Dict keys come back as ints, tuples as tuples.
        assert set(rebuilt.thread_cycles) == {0, 1}
        assert rebuilt.skew_trace == [(10.0, 2.0, -1.0)]

    def test_bytes_are_deterministic(self):
        assert canonical_result_bytes(_result(), "k") \
            == canonical_result_bytes(_result(), "k")

    def test_bytes_differ_when_metrics_differ(self):
        assert canonical_result_bytes(_result(1000), "k") \
            != canonical_result_bytes(_result(1001), "k")

    def test_unjsonable_main_result_dropped_and_flagged(self):
        result = _result()
        result.main_result = object()
        data = result_to_jsonable(result)
        assert data["main_result"] is None
        assert data["main_result_dropped"] is True
        rebuilt = result_from_jsonable(data)
        assert rebuilt.main_result is None


class TestJobKey:
    def _config(self, seed: int = 42) -> SimulationConfig:
        return SimulationConfig(num_tiles=2, seed=seed)

    def test_equal_jobs_share_a_key(self):
        assert job_key(self._config(), _ref()) \
            == job_key(self._config(), _ref())

    def test_seed_flip_changes_the_key(self):
        assert job_key(self._config(7), _ref()) \
            != job_key(self._config(8), _ref())

    def test_observational_sections_do_not_change_the_key(self):
        plain = self._config()
        observed = self._config()
        observed.telemetry.enabled = True
        observed.ckpt.dir = "/tmp/somewhere"
        observed.profile.enabled = True
        observed.distrib.backend = "mp"
        assert job_key(plain, _ref()) == job_key(observed, _ref())

    def test_program_identity_is_in_the_key(self):
        config = self._config()
        assert job_key(config, _ref()) \
            != job_key(config, WorkloadRef("fft", 2, 0.05))
        assert job_key(config, _ref()) \
            != job_key(config, WorkloadRef("matrix_multiply", 2, 0.06))

    def test_args_are_in_the_key(self):
        config = self._config()
        assert job_key(config, _ref(), ("a",)) \
            != job_key(config, _ref(), ("b",))

    def test_unjsonable_args_rejected(self):
        with pytest.raises(ServeError, match="JSON"):
            job_key(self._config(), _ref(), (object(),))

    def test_workload_descriptor_is_structural(self):
        desc = program_descriptor(_ref())
        assert desc["kind"] == "workload"
        assert desc["workload"] == "matrix_multiply"

    def test_pickled_descriptor_hashes_the_blob(self):
        a = program_descriptor(PickledProgram(b"blob-a"))
        b = program_descriptor(PickledProgram(b"blob-b"))
        assert a["kind"] == "pickled"
        assert a["sha256"] != b["sha256"]


class TestResultStore:
    KEY = "a" * 64

    def test_put_then_get_round_trips(self, tmp_path):
        store = ResultStore(str(tmp_path))
        blob = store.put(self.KEY, _result())
        assert self.KEY in store
        assert store.get_bytes(self.KEY) == blob
        envelope = store.get(self.KEY)
        assert envelope["format"] == FORMAT
        assert store.get_result(self.KEY) == _result()

    def test_duplicate_identical_put_is_idempotent(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(self.KEY, _result())
        store.put(self.KEY, _result())
        assert store.keys() == [self.KEY]

    def test_conflicting_put_is_a_determinism_violation(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(self.KEY, _result(1000))
        with pytest.raises(ServeError, match="determinism violation"):
            store.put(self.KEY, _result(9999))

    def test_missing_key_is_absent(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert self.KEY not in store
        assert store.get(self.KEY) is None
        assert store.get_result(self.KEY) is None

    def test_malformed_keys_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for bad in ("", "../escape", ".hidden"):
            with pytest.raises(ServeError):
                store.path_for(bad)

    def test_no_tmp_droppings_after_put(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(self.KEY, _result())
        assert [p.name for p in tmp_path.iterdir()] \
            == [f"{self.KEY}.json"]

    def test_unsupported_format_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path))
        path = store.path_for(self.KEY)
        with open(path, "w") as fh:
            json.dump({"format": "repro.result/999", "result": {}}, fh)
        with pytest.raises(ServeError, match="unsupported format"):
            store.get(self.KEY)
