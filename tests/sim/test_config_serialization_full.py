"""Round-trip serialization across every configuration extension."""

import json


from repro.common.config import SimulationConfig


def full_config():
    config = SimulationConfig(num_tiles=16, seed=7)
    config.memory.protocol = "mesi"
    config.memory.directory_type = "limitless"
    config.memory.directory_max_sharers = 8
    config.memory.forward_shared_reads = False
    config.memory.classify_misses = True
    config.memory.l2.line_bytes = 128
    config.memory.l1i.line_bytes = 128
    config.memory.l1d.line_bytes = 128
    config.network.memory_model = "torus"
    config.network.user_model = "ring"
    config.sync.model = "lax_p2p"
    config.sync.p2p_slack = 12_345
    config.core.model = "out_of_order"
    config.core.rob_entries = 128
    config.host.num_machines = 4
    config.host.num_processes = 8
    config.tile_core_overrides = {3: {"dispatch_width": 4}}
    config.validate()
    return config


class TestFullRoundTrip:
    def test_to_dict_from_dict_identity(self):
        original = full_config()
        restored = SimulationConfig.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()

    def test_json_round_trip(self):
        """The exact path the CLI's show-config output would take."""
        original = full_config()
        blob = json.dumps(original.to_dict())
        restored = SimulationConfig.from_dict(json.loads(blob))
        assert restored.memory.protocol == "mesi"
        assert restored.network.user_model == "ring"
        assert restored.core.rob_entries == 128
        assert restored.core_config_for(3).dispatch_width == 4
        assert restored.host.resolved_processes() == 8

    def test_copy_preserves_extensions(self):
        original = full_config()
        clone = original.copy()
        assert clone.memory.protocol == "mesi"
        clone.memory.protocol = "msi"
        assert original.memory.protocol == "mesi"

    def test_restored_config_simulates(self):
        from repro.sim.simulator import Simulator

        def program(ctx):
            base = yield from ctx.calloc(64)
            yield from ctx.store_u64(base, 5)
            return (yield from ctx.load_u64(base))

        config = SimulationConfig.from_dict(full_config().to_dict())
        config.host.quantum_instructions = 300
        assert Simulator(config).run(program).main_result == 5
