"""Repeat-run statistics (the Table 3 protocol)."""

import pytest

from repro.sim.experiment import RunStatistics, repeat_runs, sweep
from repro.sim.results import SimulationResult
from tests.conftest import tiny_config


def noisy_program(ctx):
    base = yield from ctx.malloc(256)
    for i in range(50):
        yield from ctx.store_u64(base + (i % 8) * 8, i)
        yield from ctx.compute(10)


def fake_result(cycles):
    return SimulationResult(
        simulated_cycles=cycles, wall_clock_seconds=1.0,
        native_seconds=0.1, thread_cycles={0: cycles},
        thread_instructions={0: 100}, counters={})


class TestRunStatistics:
    def test_mean(self):
        stats = RunStatistics([fake_result(c)
                               for c in (100, 200, 300)])
        assert stats.mean_cycles == pytest.approx(200.0)

    def test_cov_zero_for_identical(self):
        stats = RunStatistics([fake_result(100)] * 5)
        assert stats.cov_percent == pytest.approx(0.0)

    def test_cov_scale_invariant(self):
        a = RunStatistics([fake_result(c) for c in (90, 100, 110)])
        b = RunStatistics([fake_result(c) for c in (900, 1000, 1100)])
        assert a.cov_percent == pytest.approx(b.cov_percent)

    def test_error_percent(self):
        stats = RunStatistics([fake_result(110)])
        assert stats.error_percent(100.0) == pytest.approx(10.0)

    def test_error_symmetric(self):
        stats = RunStatistics([fake_result(90)])
        assert stats.error_percent(100.0) == pytest.approx(10.0)


class TestDegenerateStatistics:
    """Guards for empty, single-run and zero-mean populations — none
    may raise (a sampled sweep can legitimately produce any of them)."""

    def test_empty_means_are_zero(self):
        stats = RunStatistics([])
        assert stats.mean_cycles == 0.0
        assert stats.mean_wall_clock == 0.0

    def test_empty_cov_is_zero(self):
        assert RunStatistics([]).cov_percent == 0.0

    def test_single_run_cov_is_zero(self):
        """n = 1 has no variance estimate; 0.0, not a DivisionError."""
        assert RunStatistics([fake_result(100)]).cov_percent == 0.0

    def test_zero_mean_cov_is_zero(self):
        stats = RunStatistics([fake_result(0), fake_result(0)])
        assert stats.cov_percent == 0.0

    def test_empty_error_percent_is_zero(self):
        assert RunStatistics([]).error_percent(100.0) == 0.0

    def test_zero_baseline_error_percent_is_zero(self):
        stats = RunStatistics([fake_result(100)])
        assert stats.error_percent(0.0) == 0.0


class TestRepeatRuns:
    def test_runs_vary_by_seed(self):
        stats = repeat_runs(tiny_config(2), noisy_program, runs=3)
        assert len(stats.results) == 3
        walls = [r.wall_clock_seconds for r in stats.results]
        assert len(set(walls)) > 1  # jitter differs per seed

    def test_simulated_cycles_functionally_stable(self):
        """All runs execute the same program; cycle counts may differ
        slightly (interleaving) but instructions are identical."""
        stats = repeat_runs(tiny_config(2), noisy_program, runs=3)
        instr = {r.total_instructions for r in stats.results}
        assert len(instr) == 1

    def test_base_seed_reproducible(self):
        a = repeat_runs(tiny_config(2), noisy_program, runs=2,
                        base_seed=5)
        b = repeat_runs(tiny_config(2), noisy_program, runs=2,
                        base_seed=5)
        assert a.simulated_cycles == b.simulated_cycles


class TestSweep:
    def test_sweep_runs_each_config(self):
        configs = [tiny_config(2), tiny_config(4)]
        results = sweep(configs, noisy_program)
        assert len(results) == 2
