"""Heterogeneous tiles (per-tile core-model overrides)."""

import pytest

from repro.common.config import SimulationConfig
from repro.common.errors import ConfigError
from repro.sim.simulator import Simulator
from tests.conftest import tiny_config


class TestConfig:
    def test_override_merges_fields(self):
        config = SimulationConfig(num_tiles=4)
        config.tile_core_overrides = {1: {"dispatch_width": 4,
                                          "model": "out_of_order"}}
        config.validate()
        assert config.core_config_for(1).dispatch_width == 4
        assert config.core_config_for(1).model == "out_of_order"
        assert config.core_config_for(0).model == "in_order"

    def test_base_config_untouched(self):
        config = SimulationConfig(num_tiles=4)
        config.tile_core_overrides = {1: {"dispatch_width": 4}}
        config.core_config_for(1)
        assert config.core.dispatch_width == 2

    def test_override_for_missing_tile_rejected(self):
        config = SimulationConfig(num_tiles=4)
        config.tile_core_overrides = {7: {"dispatch_width": 4}}
        with pytest.raises(ConfigError):
            config.validate()

    def test_unknown_field_rejected(self):
        config = SimulationConfig(num_tiles=4)
        config.tile_core_overrides = {0: {"turbo": True}}
        with pytest.raises(ConfigError):
            config.validate()

    def test_invalid_override_value_rejected(self):
        config = SimulationConfig(num_tiles=4)
        config.tile_core_overrides = {0: {"model": "quantum"}}
        with pytest.raises(ConfigError):
            config.validate()

    def test_from_dict_normalizes_keys(self):
        config = SimulationConfig.from_dict({
            "num_tiles": 4,
            "tile_core_overrides": {"2": {"dispatch_width": 8}},
        })
        assert config.core_config_for(2).dispatch_width == 8

    def test_round_trip(self):
        config = SimulationConfig(num_tiles=4)
        config.tile_core_overrides = {3: {"rob_entries": 128}}
        restored = SimulationConfig.from_dict(config.to_dict())
        assert restored.core_config_for(3).rob_entries == 128


class TestSimulation:
    def test_big_little_timing(self):
        """A faster tile finishes the same per-thread work earlier."""
        def worker(ctx, index, base):
            for i in range(64):
                yield from ctx.load_u64(base + (index * 64 + i % 8) * 8)
                yield from ctx.compute(100)

        def main(ctx):
            base = yield from ctx.calloc(4096, align=64)
            threads = yield from ctx.spawn_workers(worker, 3, base)
            yield from worker(ctx, 3, base)
            yield from ctx.join_all(threads)

        config = tiny_config(4)
        # Tile 2: an out-of-order "big" core.
        config.tile_core_overrides = {
            2: {"model": "out_of_order", "dispatch_width": 4}}
        config.validate()
        simulator = Simulator(config)
        result = simulator.run(main)
        # The big core's own progress (start -> final, before join
        # forwarding) is faster than a little core's.
        big = result.thread_cycles[2] - result.thread_start_cycles[2]
        little = result.thread_cycles[1] - result.thread_start_cycles[1]
        assert big < little

    def test_functional_result_unchanged(self):
        def main(ctx):
            base = yield from ctx.calloc(64)
            yield from ctx.store_u64(base, 41)

            def child(ctx, base):
                value = yield from ctx.load_u64(base)
                yield from ctx.store_u64(base, value + 1)

            thread = yield from ctx.spawn(child, base)
            yield from ctx.join(thread)
            return (yield from ctx.load_u64(base))

        config = tiny_config(2)
        config.tile_core_overrides = {1: {"model": "out_of_order"}}
        config.validate()
        assert Simulator(config).run(main).main_result == 42
