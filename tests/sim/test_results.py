"""SimulationResult derived metrics."""

import pytest

from repro.sim.results import SimulationResult


def result(**overrides):
    base = dict(
        simulated_cycles=1000,
        wall_clock_seconds=2.0,
        native_seconds=0.01,
        thread_cycles={0: 1000, 1: 900},
        thread_instructions={0: 500, 1: 400},
        counters={},
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestDerived:
    def test_total_instructions(self):
        assert result().total_instructions == 900

    def test_slowdown(self):
        assert result().slowdown == pytest.approx(200.0)

    def test_slowdown_zero_native(self):
        assert result(native_seconds=0.0).slowdown == float("inf")

    def test_counter_suffix_sum(self):
        r = result(counters={"sim.mc0.loads": 5, "sim.mc1.loads": 7,
                             "sim.mc0.stores": 3})
        assert r.counter(".loads") == 12
        assert r.counter(".stores") == 3
        assert r.counter(".misses") == 0

    def test_cache_miss_rate(self):
        r = result(counters={
            "sim.memory.tile0.l2.lookups": 100,
            "sim.memory.tile0.l2.hits": 80,
            "sim.memory.tile1.l2.lookups": 100,
            "sim.memory.tile1.l2.hits": 60,
        })
        assert r.cache_miss_rate("l2") == pytest.approx(0.3)

    def test_cache_miss_rate_no_lookups(self):
        assert result().cache_miss_rate("l2") == 0.0


class TestParallelCycles:
    def test_single_thread_is_whole_run(self):
        r = result(thread_start_cycles={0: 0},
                   thread_cycles={0: 1000})
        assert r.parallel_cycles == 1000

    def test_excludes_serial_prefix(self):
        r = result(simulated_cycles=10_000,
                   thread_start_cycles={0: 0, 1: 4000, 2: 4100})
        assert r.parallel_cycles == 6000

    def test_never_below_one(self):
        r = result(simulated_cycles=100,
                   thread_start_cycles={0: 0, 1: 100})
        assert r.parallel_cycles == 1

    def test_roi_tracked_by_simulator(self):
        """End-to-end: start clocks recorded and ROI < total."""
        from repro.sim.simulator import Simulator
        from tests.conftest import tiny_config

        def child(ctx):
            yield from ctx.compute(500)

        def main(ctx):
            yield from ctx.compute(20_000)  # serial prefix
            thread = yield from ctx.spawn(child)
            yield from ctx.join(thread)

        res = Simulator(tiny_config(2)).run(main)
        assert res.thread_start_cycles[1] >= 20_000
        assert res.parallel_cycles < res.simulated_cycles
