"""The Simulator facade: wiring, determinism, results."""


from repro.sim.simulator import Simulator
from tests.conftest import tiny_config


def busy_program(ctx):
    address = yield from ctx.malloc(1024)
    for i in range(100):
        yield from ctx.store_u64(address + (i % 16) * 8, i)
        yield from ctx.compute(20)
    total = 0
    for i in range(16):
        total += yield from ctx.load_u64(address + i * 8)
    return total


class TestDeterminism:
    def test_same_seed_same_cycles(self):
        a = Simulator(tiny_config(4)).run(busy_program)
        b = Simulator(tiny_config(4)).run(busy_program)
        assert a.simulated_cycles == b.simulated_cycles
        assert a.wall_clock_seconds == b.wall_clock_seconds

    def test_different_seed_different_wall_clock(self):
        cfg_a = tiny_config(4)
        cfg_b = tiny_config(4)
        cfg_b.seed = cfg_a.seed + 1
        a = Simulator(cfg_a).run(busy_program)
        b = Simulator(cfg_b).run(busy_program)
        assert a.wall_clock_seconds != b.wall_clock_seconds

    def test_functional_result_seed_independent(self):
        cfg_a = tiny_config(4)
        cfg_b = tiny_config(4)
        cfg_b.seed = 999
        a = Simulator(cfg_a).run(busy_program)
        b = Simulator(cfg_b).run(busy_program)
        assert a.main_result == b.main_result


class TestResults:
    def test_wall_clock_includes_startup(self):
        cfg = tiny_config(4)
        result = Simulator(cfg).run(busy_program)
        assert result.wall_clock_seconds >= \
            cfg.host.process_startup_cost

    def test_native_model_positive(self):
        result = Simulator(tiny_config(4)).run(busy_program)
        assert result.native_seconds > 0
        assert result.slowdown > 1.0

    def test_thread_bookkeeping(self):
        def child(ctx):
            yield from ctx.compute(10)

        def main(ctx):
            thread = yield from ctx.spawn(child)
            yield from ctx.join(thread)
            yield from ctx.compute(5)

        result = Simulator(tiny_config(4)).run(main)
        assert set(result.thread_cycles) == {0, 1}
        assert result.total_instructions >= 15

    def test_counters_snapshot(self):
        result = Simulator(tiny_config(4)).run(busy_program)
        assert result.counter("transport.messages_sent") > 0
        assert result.cache_miss_rate("l2") > 0

    def test_miss_breakdown_when_enabled(self):
        cfg = tiny_config(4)
        cfg.memory.classify_misses = True
        result = Simulator(cfg).run(busy_program)
        assert sum(result.miss_breakdown.values()) > 0
        assert "cold" in result.miss_breakdown


class TestSkewTracing:
    def test_trace_collected_when_enabled(self):
        def worker(ctx, index):
            yield from ctx.compute(200_000)

        def main(ctx):
            threads = yield from ctx.spawn_workers(worker, 2)
            yield from worker(ctx, 0)
            yield from ctx.join_all(threads)

        cfg = tiny_config(4)
        cfg.trace_clock_skew = True
        cfg.skew_sample_period = 4
        result = Simulator(cfg).run(main)
        assert len(result.skew_trace) > 5
        for _, hi, lo in result.skew_trace:
            assert hi >= lo

    def test_trace_absent_by_default(self):
        result = Simulator(tiny_config(4)).run(busy_program)
        assert result.skew_trace == []


class TestHostScaling:
    def test_more_cores_faster_wall_clock(self):
        def worker(ctx, index, base):
            for i in range(60):
                yield from ctx.store_u64(base + (index * 64 + i % 8) * 8,
                                         i)
                yield from ctx.compute(50)

        def main(ctx):
            base = yield from ctx.malloc(8 * 64 * 8, align=64)
            threads = yield from ctx.spawn_workers(worker, 7, base)
            yield from worker(ctx, 7, base)
            yield from ctx.join_all(threads)

        slow_cfg = tiny_config(8, cores_per_machine=1)
        fast_cfg = tiny_config(8, cores_per_machine=8)
        slow = Simulator(slow_cfg).run(main)
        fast = Simulator(fast_cfg).run(main)
        assert fast.wall_clock_seconds < slow.wall_clock_seconds

    def test_cross_machine_communication_costs_more(self):
        def worker(ctx, index, peer_cell):
            for i in range(40):
                yield from ctx.store_u64(peer_cell, i)

        def main(ctx):
            cell = yield from ctx.malloc(8)
            threads = yield from ctx.spawn_workers(worker, 3, cell)
            yield from worker(ctx, 0, cell)
            yield from ctx.join_all(threads)

        one_cfg = tiny_config(4, num_machines=1)
        two_cfg = tiny_config(4, num_machines=2)
        one = Simulator(one_cfg).run(main)
        two = Simulator(two_cfg).run(main)
        # Heavy fine-grained sharing across machines is slower.
        assert two.wall_clock_seconds > one.wall_clock_seconds
