"""Cross-configuration smoke matrix: every knob combination runs.

Not exhaustive (that is the equivalence suite's job for functional
claims); this sweeps one axis at a time across its full domain so no
registered option is dead code.
"""

import pytest

from repro.common.config import (
    DIRECTORY_TYPES,
    NETWORK_MODELS,
    SYNC_MODELS,
    SimulationConfig,
)
from repro.sim.simulator import Simulator
from repro.workloads import get_workload


def run_one(mutate):
    config = SimulationConfig(num_tiles=4)
    config.host.quantum_instructions = 300
    mutate(config)
    config.validate()
    simulator = Simulator(config)
    program = get_workload("cholesky").main(nthreads=4, scale=0.3)
    result = simulator.run(program)
    simulator.engine.check_coherence_invariants()
    assert result.main_result is True
    return result


@pytest.mark.parametrize("model", NETWORK_MODELS)
def test_every_network_model(model):
    run_one(lambda c: (setattr(c.network, "memory_model", model),
                       setattr(c.network, "user_model", model)))


@pytest.mark.parametrize("directory", DIRECTORY_TYPES)
def test_every_directory(directory):
    run_one(lambda c: setattr(c.memory, "directory_type", directory))


@pytest.mark.parametrize("sync", SYNC_MODELS)
def test_every_sync_model(sync):
    run_one(lambda c: setattr(c.sync, "model", sync))


@pytest.mark.parametrize("protocol", ["msi", "mesi"])
def test_every_protocol(protocol):
    run_one(lambda c: setattr(c.memory, "protocol", protocol))


@pytest.mark.parametrize("core", ["in_order", "out_of_order"])
def test_every_core_model(core):
    run_one(lambda c: setattr(c.core, "model", core))


@pytest.mark.parametrize("machines,processes", [(1, 1), (1, 2), (2, 2),
                                                (2, 4), (4, 4)])
def test_cluster_shapes(machines, processes):
    def mutate(config):
        config.host.num_machines = machines
        config.host.num_processes = processes
    run_one(mutate)


def test_kitchen_sink():
    """Everything non-default at once."""
    def mutate(config):
        config.memory.protocol = "mesi"
        config.memory.directory_type = "limitless"
        config.memory.directory_max_sharers = 2
        config.network.memory_model = "torus"
        config.network.user_model = "ring"
        config.sync.model = "lax_p2p"
        config.sync.p2p_slack = 2000
        config.core.model = "out_of_order"
        config.host.num_machines = 2
        config.memory.classify_misses = True
        config.tile_core_overrides = {0: {"dispatch_width": 4}}
    result = run_one(mutate)
    assert sum(result.miss_breakdown.values()) > 0
