"""LaxBarrier model edge cases around blocked threads and stalls."""


from repro.sim.simulator import Simulator
from tests.conftest import tiny_config


def barrier_config(tiles=4, interval=500):
    config = tiny_config(tiles)
    config.sync.model = "lax_barrier"
    config.sync.barrier_interval = interval
    return config


class TestBlockedThreadsAndEpochs:
    def test_lock_holder_parked_at_barrier_does_not_deadlock(self):
        """A waiter blocked on a lock is exempt from the sync barrier;
        the holder parks at the epoch boundary and must be released so
        it can eventually unlock."""
        def holder(ctx, lock):
            yield from ctx.lock(lock)
            yield from ctx.compute(5_000)  # spans many 500-cycle epochs
            yield from ctx.unlock(lock)

        def waiter(ctx, lock, flag):
            yield from ctx.lock(lock)
            yield from ctx.store_u64(flag, 1)
            yield from ctx.unlock(lock)

        def main(ctx):
            lock = yield from ctx.calloc(8, align=64)
            flag = yield from ctx.calloc(8, align=64)
            h = yield from ctx.spawn(holder, lock)
            yield from ctx.compute(1_000)
            w = yield from ctx.spawn(waiter, lock, flag)
            yield from ctx.join(h)
            yield from ctx.join(w)
            return (yield from ctx.load_u64(flag))

        result = Simulator(barrier_config()).run(main)
        assert result.main_result == 1

    def test_app_barrier_under_sync_barrier(self):
        """Application barriers interleaved with epoch barriers."""
        def worker(ctx, index, app_barrier, out):
            for round_ in range(3):
                yield from ctx.compute(700 * (index + 1))  # skewed work
                yield from ctx.barrier(app_barrier + 64 * round_, 3)
            yield from ctx.store_u64(out + index * 8, 1)

        def main(ctx):
            app_barrier = yield from ctx.calloc(256, align=64)
            out = yield from ctx.calloc(24, align=64)
            threads = yield from ctx.spawn_workers(worker, 2,
                                                   app_barrier, out)
            yield from worker(ctx, 2, app_barrier, out)
            yield from ctx.join_all(threads)
            total = 0
            for i in range(3):
                total += yield from ctx.load_u64(out + i * 8)
            return total

        result = Simulator(barrier_config()).run(main)
        assert result.main_result == 3

    def test_epochs_advance_with_single_thread(self):
        """A lone thread must not livelock at epoch boundaries."""
        def main(ctx):
            yield from ctx.compute(10_000)
            return True

        config = barrier_config(tiles=2, interval=200)
        result = Simulator(config).run(main)
        assert result.main_result is True
        assert result.counter(".barriers_released") >= 10

    def test_interval_bounds_final_clock_spread(self):
        """At completion, active threads ended within ~an epoch or two
        of each other (the lock-step property)."""
        def worker(ctx, index):
            yield from ctx.compute(20_000 + index * 5_000)

        def main(ctx):
            threads = yield from ctx.spawn_workers(worker, 3)
            yield from worker(ctx, 3)
            yield from ctx.join_all(threads)

        config = barrier_config(interval=1_000)
        simulator = Simulator(config)
        simulator.run(main)
        # The sync model released many epochs.
        sync = simulator.sync_model
        assert sync.stats.counter("barriers_released").value > 10
