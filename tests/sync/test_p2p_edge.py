"""LaxP2P edge cases: sleep bounds, partner selection, serial phases."""



from repro.sim.simulator import Simulator
from repro.sync.p2p import LaxP2PModel
from tests.conftest import tiny_config
from tests.sync.test_sync_models import ClockedTask, build


class TestSleepBound:
    def test_sleep_capped(self):
        scheduler, sync = build("lax_p2p", tiles=2, p2p_slack=100,
                                p2p_interval=100)
        ref = [scheduler]
        fast = ClockedTask(0, 10_000, 200_000, scheduler_ref=ref)
        slow = ClockedTask(1, 10, 500, scheduler_ref=ref)
        scheduler.add_thread(fast)
        scheduler.add_thread(slow)
        scheduler.run()
        hist = sync.stats.histogram("p2p_sleep_seconds")
        if hist.count:
            assert hist.max <= LaxP2PModel.MAX_SLEEP_SECONDS + 1e-12

    def test_serial_phase_workload_terminates(self):
        """A program with a long serial section (one thread works while
        all others are blocked) must not diverge: the sleep formula's
        rate estimate collapses in this regime without the cap."""
        def main(ctx):
            lock = yield from ctx.calloc(8, align=64)

            def worker(ctx, index, lock):
                yield from ctx.lock(lock)
                yield from ctx.compute(50_000)  # long critical section
                yield from ctx.unlock(lock)

            threads = yield from ctx.spawn_workers(worker, 3, lock)
            yield from ctx.join_all(threads)
            return True

        config = tiny_config(4)
        config.sync.model = "lax_p2p"
        config.sync.p2p_slack = 1_000
        config.sync.p2p_interval = 500
        result = Simulator(config).run(main)
        assert result.main_result is True
        # The run would take ~hours of modelled wall-clock if a sleep
        # diverged; sanity-bound it.
        assert result.wall_clock_seconds < 1.0


class TestPartnerSelection:
    def test_blocked_threads_not_chosen(self):
        from repro.host.scheduler import ThreadState

        scheduler, sync = build("lax_p2p", tiles=3, p2p_slack=100,
                                p2p_interval=100)
        ref = [scheduler]
        scheduler.add_thread(
            ClockedTask(0, 1000, 10_000, scheduler_ref=ref))
        stale = scheduler.add_thread(
            ClockedTask(1, 10, 10_000, scheduler_ref=ref))
        stale.state = ThreadState.BLOCKED  # stale clock, must be ignored
        scheduler.add_thread(
            ClockedTask(2, 1000, 10_000, scheduler_ref=ref))

        chosen = []
        original = sync._rng.choice

        def spy(candidates):
            chosen.extend(int(t.tile) for t in candidates)
            return original(candidates)

        sync._rng.choice = spy
        # Run a few turns manually; the blocked thread never appears.
        for _ in range(30):
            core = scheduler._pick_core()
            if core is None:
                break
            thread = scheduler._next_thread(core)
            scheduler._run_quantum(core, thread)
        assert 1 not in chosen
        assert chosen  # checks did happen

    def test_lone_thread_never_checks_against_itself(self):
        config = tiny_config(2)
        config.sync.model = "lax_p2p"
        config.sync.p2p_interval = 200

        def main(ctx):
            yield from ctx.compute(5_000)
            return True

        result = Simulator(config).run(main)
        assert result.main_result is True
