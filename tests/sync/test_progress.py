"""Global-progress estimation and the lax queue model."""

import pytest

from repro.common.stats import StatGroup
from repro.sync.progress import ProgressEstimator
from repro.sync.queue_model import LaxQueueModel


class TestProgressEstimator:
    def test_empty_estimate_zero(self):
        assert ProgressEstimator(8).estimate() == 0.0

    def test_average_of_window(self):
        p = ProgressEstimator(4)
        for t in (100, 200, 300, 400):
            p.observe(t)
        assert p.estimate() == pytest.approx(250.0)

    def test_window_slides(self):
        p = ProgressEstimator(2)
        p.observe(0)
        p.observe(100)
        p.observe(200)  # pushes out the 0
        assert p.estimate() == pytest.approx(150.0)

    def test_outliers_suppressed_by_large_window(self):
        p = ProgressEstimator(100)
        for _ in range(99):
            p.observe(1000)
        p.observe(1_000_000)  # one runaway tile
        assert p.estimate() < 12_000

    def test_window_size_validation(self):
        with pytest.raises(ValueError):
            ProgressEstimator(0)

    def test_samples_tracked(self):
        p = ProgressEstimator(4)
        p.observe(1)
        p.observe(2)
        assert p.samples == 2


class TestLaxQueueModel:
    def make(self, window=8):
        progress = ProgressEstimator(window)
        return LaxQueueModel(progress, StatGroup("q")), progress

    def test_uncontended_access_costs_service_time(self):
        queue, _ = self.make()
        assert queue.access(arrival_time=1000, processing_time=10) == 10

    def test_back_to_back_accesses_queue_up(self):
        queue, _ = self.make()
        total = [queue.access(1000, 10) for _ in range(5)]
        assert total[0] == 10
        assert total[-1] > total[0]  # later packets wait behind earlier

    def test_aggregate_delay_correct(self):
        """N simultaneous packets: total delay == 0+s+2s+...+(N-1)s."""
        queue, _ = self.make(window=1000)
        service = 10
        n = 8
        total = sum(queue.access(5000, service) for _ in range(n))
        expected = n * service + service * (n - 1) * n // 2
        assert total == pytest.approx(expected, rel=0.05)

    def test_idle_queue_drains(self):
        queue, _ = self.make()
        queue.access(1000, 100)
        # Much later in simulated time, the queue is empty again.
        assert queue.access(10_000, 100) == 100

    def test_queue_clock_advances(self):
        queue, _ = self.make()
        queue.access(1000, 50)
        assert queue.queue_clock >= 1050

    def test_delay_statistics(self):
        stats = StatGroup("q")
        queue = LaxQueueModel(ProgressEstimator(8), stats)
        for _ in range(5):
            queue.access(1000, 10)
        assert stats.counter("queue_requests").value == 5
        assert stats.counter("queue_delay_cycles").value > 0
