"""Synchronization models: lax, LaxBarrier, LaxP2P (paper §3.6)."""

import random


from repro.common.config import HostConfig, SyncConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.host.cluster import ClusterLayout
from repro.host.costmodel import HostCostModel
from repro.host.scheduler import (
    QuantumResult,
    QuantumStatus,
    Scheduler,
    ThreadTask,
)
from repro.sync.barrier import LaxBarrierModel
from repro.sync.lax import LaxModel
from repro.sync.model import create_sync_model
from repro.sync.p2p import LaxP2PModel


class ClockedTask(ThreadTask):
    """Advances its clock by a fixed rate per quantum until a target."""

    def __init__(self, tile, cycles_per_quantum, target_cycles,
                 cost=1.0, scheduler_ref=None):
        self.tile = TileId(tile)
        self.rate = cycles_per_quantum
        self.target = target_cycles
        self.cost = cost
        self._cycles = 0
        self._scheduler_ref = scheduler_ref

    def run(self, budget_instructions, cycle_limit=None):
        if self._scheduler_ref:
            self._scheduler_ref[0].charge(self.cost)
        step = self.rate
        if cycle_limit is not None:
            step = min(step, max(cycle_limit - self._cycles, 0))
        self._cycles += step
        if self._cycles >= self.target:
            return QuantumResult(QuantumStatus.DONE, step)
        return QuantumResult(QuantumStatus.RAN, step)

    @property
    def cycles(self):
        return self._cycles


def build(model_name, tiles=4, **sync_kwargs):
    sync_config = SyncConfig(model=model_name, **sync_kwargs)
    sync = create_sync_model(sync_config, StatGroup("sync"),
                             random.Random(0))
    host = HostConfig(jitter=0.0)
    layout = ClusterLayout(tiles, host)
    scheduler = Scheduler(layout, HostCostModel(host), sync,
                          StatGroup("sched"), quantum_instructions=100)
    return scheduler, sync


class TestFactory:
    def test_types(self):
        assert isinstance(build("lax")[1], LaxModel)
        assert isinstance(build("lax_barrier")[1], LaxBarrierModel)
        assert isinstance(build("lax_p2p")[1], LaxP2PModel)


class TestLax:
    def test_lax_imposes_no_cycle_limit(self):
        scheduler, sync = build("lax")
        ref = [scheduler]
        thread = scheduler.add_thread(
            ClockedTask(0, 100, 1000, scheduler_ref=ref))
        assert sync.cycle_limit(thread) is None

    def test_lax_lets_clocks_diverge(self):
        scheduler, _ = build("lax", tiles=2)
        ref = [scheduler]
        fast = ClockedTask(0, 1000, 10_000, scheduler_ref=ref)
        slow = ClockedTask(1, 10, 100, scheduler_ref=ref)
        scheduler.add_thread(fast)
        scheduler.add_thread(slow)
        scheduler.run()
        assert fast.cycles - slow.cycles > 5000


class TestLaxBarrier:
    def test_threads_stop_at_epoch(self):
        scheduler, sync = build("lax_barrier", barrier_interval=1000)
        ref = [scheduler]
        thread = scheduler.add_thread(
            ClockedTask(0, 100, 5000, scheduler_ref=ref))
        assert sync.cycle_limit(thread) == 1000

    def test_barrier_bounds_skew(self):
        scheduler, _ = build("lax_barrier", tiles=2,
                             barrier_interval=500)
        ref = [scheduler]
        fast = ClockedTask(0, 500, 4000, scheduler_ref=ref)
        slow = ClockedTask(1, 100, 4000, scheduler_ref=ref)
        scheduler.add_thread(fast)
        scheduler.add_thread(slow)

        max_skew = 0
        original = scheduler._run_quantum

        def spy(core, thread):
            nonlocal max_skew
            original(core, thread)
            clocks = scheduler.thread_clocks()
            if len(clocks) == 2:
                max_skew = max(max_skew, abs(clocks[0] - clocks[1]))

        scheduler._run_quantum = spy
        scheduler.run()
        assert max_skew <= 1000  # within two epochs

    def test_barriers_released_counted(self):
        scheduler, sync = build("lax_barrier", tiles=2,
                                barrier_interval=500)
        ref = [scheduler]
        scheduler.add_thread(ClockedTask(0, 250, 2000, scheduler_ref=ref))
        scheduler.add_thread(ClockedTask(1, 250, 2000, scheduler_ref=ref))
        scheduler.run()
        assert sync.stats.counter("barriers_released").value >= 3

    def test_done_thread_releases_barrier(self):
        """A finishing thread must not leave others stuck."""
        scheduler, _ = build("lax_barrier", tiles=2,
                             barrier_interval=1000)
        ref = [scheduler]
        short = ClockedTask(0, 200, 400, scheduler_ref=ref)   # ends early
        long_ = ClockedTask(1, 200, 3000, scheduler_ref=ref)
        scheduler.add_thread(short)
        scheduler.add_thread(long_)
        report = scheduler.run()  # must terminate
        assert long_.cycles >= 3000
        assert report.total_quanta > 0

    def test_barrier_adds_host_cost(self):
        with_barrier, _ = build("lax_barrier", tiles=2,
                                barrier_interval=100)
        without, _ = build("lax", tiles=2)
        for scheduler in (with_barrier, without):
            ref = [scheduler]
            scheduler.add_thread(ClockedTask(0, 100, 2000,
                                             scheduler_ref=ref))
            scheduler.add_thread(ClockedTask(1, 100, 2000,
                                             scheduler_ref=ref))
        slow = with_barrier.run().wall_clock_seconds
        fast = without.run().wall_clock_seconds
        assert slow > fast


class TestLaxP2P:
    def test_cycle_limit_is_next_check(self):
        scheduler, sync = build("lax_p2p", p2p_interval=1000)
        ref = [scheduler]
        thread = scheduler.add_thread(
            ClockedTask(0, 100, 10_000, scheduler_ref=ref))
        assert sync.cycle_limit(thread) == 1000

    def test_runahead_thread_put_to_sleep(self):
        scheduler, sync = build("lax_p2p", tiles=2, p2p_slack=1000,
                                p2p_interval=500)
        ref = [scheduler]
        fast = ClockedTask(0, 500, 50_000, scheduler_ref=ref)
        slow = ClockedTask(1, 10, 1000, scheduler_ref=ref)
        scheduler.add_thread(fast)
        scheduler.add_thread(slow)
        scheduler.run()
        assert sync.stats.counter("p2p_sleeps").value > 0

    def test_synchronized_threads_never_sleep(self):
        scheduler, sync = build("lax_p2p", tiles=2, p2p_slack=100_000,
                                p2p_interval=1000)
        ref = [scheduler]
        scheduler.add_thread(ClockedTask(0, 100, 5000, scheduler_ref=ref))
        scheduler.add_thread(ClockedTask(1, 100, 5000, scheduler_ref=ref))
        scheduler.run()
        assert sync.stats.counter("p2p_sleeps").value == 0

    def test_checks_happen_periodically(self):
        scheduler, sync = build("lax_p2p", tiles=2, p2p_interval=500)
        ref = [scheduler]
        scheduler.add_thread(ClockedTask(0, 100, 5000, scheduler_ref=ref))
        scheduler.add_thread(ClockedTask(1, 100, 5000, scheduler_ref=ref))
        scheduler.run()
        assert sync.stats.counter("p2p_checks").value >= 10

    def test_p2p_bounds_skew_better_than_lax(self):
        def max_skew_with(model_name, **kwargs):
            scheduler, _ = build(model_name, tiles=2, **kwargs)
            ref = [scheduler]
            fast = ClockedTask(0, 1000, 50_000, scheduler_ref=ref)
            slow = ClockedTask(1, 100, 50_000, scheduler_ref=ref)
            scheduler.add_thread(fast)
            scheduler.add_thread(slow)
            skew = 0
            original = scheduler._run_quantum

            def spy(core, thread):
                nonlocal skew
                original(core, thread)
                clocks = scheduler.thread_clocks()
                if len(clocks) == 2:
                    skew = max(skew, abs(clocks[0] - clocks[1]))

            scheduler._run_quantum = spy
            scheduler.run()
            return skew

        lax_skew = max_skew_with("lax")
        p2p_skew = max_skew_with("lax_p2p", p2p_slack=2000,
                                 p2p_interval=500)
        assert p2p_skew < lax_skew
