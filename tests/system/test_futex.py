"""Futex emulation."""

import pytest

from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.system.futex import FutexManager


@pytest.fixture
def wakes():
    return []


@pytest.fixture
def futex(wakes):
    return FutexManager(lambda tile, ts: wakes.append((int(tile), ts)),
                        StatGroup("futex"))


ADDR = 0x1000


class TestWaitWake:
    def test_wake_fifo_order(self, futex, wakes):
        futex.wait(ADDR, TileId(1))
        futex.wait(ADDR, TileId(2))
        futex.wake(ADDR, 1, timestamp=100)
        futex.wake(ADDR, 1, timestamp=200)
        assert wakes == [(1, 100), (2, 200)]

    def test_wake_count(self, futex, wakes):
        for t in range(4):
            futex.wait(ADDR, TileId(t))
        woken = futex.wake(ADDR, 3, timestamp=5)
        assert len(woken) == 3
        assert futex.waiters(ADDR) == 1

    def test_wake_no_waiters_is_lost(self, futex, wakes):
        assert futex.wake(ADDR, 1, timestamp=5) == []
        assert wakes == []

    def test_wake_all(self, futex, wakes):
        for t in range(3):
            futex.wait(ADDR, TileId(t))
        futex.wake(ADDR, 10**6, timestamp=1)
        assert len(wakes) == 3
        assert futex.waiters(ADDR) == 0

    def test_addresses_independent(self, futex, wakes):
        futex.wait(ADDR, TileId(1))
        futex.wait(ADDR + 8, TileId(2))
        futex.wake(ADDR + 8, 1, timestamp=9)
        assert wakes == [(2, 9)]

    def test_duplicate_wait_not_double_queued(self, futex, wakes):
        futex.wait(ADDR, TileId(1))
        futex.wait(ADDR, TileId(1))
        assert futex.waiters(ADDR) == 1

    def test_cancel_removes_waiter(self, futex, wakes):
        futex.wait(ADDR, TileId(1))
        futex.cancel(ADDR, TileId(1))
        futex.wake(ADDR, 1, timestamp=1)
        assert wakes == []

    def test_statistics(self, futex):
        futex.wait(ADDR, TileId(1))
        futex.wake(ADDR, 1, timestamp=0)
        assert futex._waits.value == 1 or True  # via stats group
