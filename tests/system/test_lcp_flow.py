"""Spawn protocol flow: caller -> MCP -> owning LCP -> new thread."""


from repro.sim.simulator import Simulator
from tests.conftest import tiny_config


class TestSpawnDistribution:
    def test_spawns_stripe_across_processes(self):
        """Paper §3.5: threads distribute by tile striping, handled by
        each owning process's LCP."""
        def worker(ctx, index):
            yield from ctx.compute(10)

        def main(ctx):
            threads = yield from ctx.spawn_workers(worker, 7)
            yield from ctx.join_all(threads)

        config = tiny_config(8, num_machines=2)
        simulator = Simulator(config)
        simulator.run(main)
        counts = {int(p): lcp.threads_spawned
                  for p, lcp in simulator.lcps.items()}
        # 8 threads striped over 2 processes -> 4 each.
        assert counts == {0: 4, 1: 4}

    def test_lcp_initialized_before_first_spawn(self):
        def main(ctx):
            def child(ctx):
                yield from ctx.compute(1)
            thread = yield from ctx.spawn(child)
            yield from ctx.join(thread)

        config = tiny_config(4, num_machines=2)
        simulator = Simulator(config)
        simulator.run(main)
        for lcp in simulator.lcps.values():
            if lcp.threads_spawned:
                assert lcp.initialized

    def test_sequential_reuse_round_robins_tiles(self):
        """Tiles free up and are reallocated lowest-first."""
        def child(ctx):
            yield from ctx.compute(5)

        def main(ctx):
            tiles = []
            for _ in range(5):
                thread = yield from ctx.spawn(child)
                tiles.append(int(thread))
                yield from ctx.join(thread)
            return tiles

        config = tiny_config(3)
        result = Simulator(config).run(main)
        # Only tiles 1 and 2 are free (main holds 0); reuse alternates
        # to the lowest free tile, which is 1 once it finished.
        assert all(t in (1, 2) for t in result.main_result)
        assert result.main_result[0] == 1
