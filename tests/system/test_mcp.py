"""MCP: application barriers and the aggregated control services."""

import pytest

from repro.common.errors import TargetFault
from repro.common.ids import ProcessId, TileId
from repro.common.stats import StatGroup
from repro.common.config import HostConfig
from repro.host.cluster import ClusterLayout
from repro.memory.address import AddressSpace
from repro.memory.allocator import DynamicMemoryManager
from repro.system.lcp import create_lcps
from repro.system.mcp import MasterControlProgram


@pytest.fixture
def wakes():
    return []


@pytest.fixture
def mcp(wakes):
    allocator = DynamicMemoryManager(AddressSpace(8, 64))
    return MasterControlProgram(
        8, allocator, lambda t, ts: wakes.append((int(t), ts)),
        StatGroup("mcp"))


BAR = 0x2000


class TestBarriers:
    def test_last_arrival_releases(self, mcp, wakes):
        assert mcp.barrier_arrive(BAR, 3, TileId(0), clock=10) is None
        assert mcp.barrier_arrive(BAR, 3, TileId(1), clock=30) is None
        release = mcp.barrier_arrive(BAR, 3, TileId(2), clock=20)
        assert release is not None and release > 30
        assert sorted(w[0] for w in wakes) == [0, 1]

    def test_release_time_is_max_arrival(self, mcp, wakes):
        mcp.barrier_arrive(BAR, 2, TileId(0), clock=500)
        release = mcp.barrier_arrive(BAR, 2, TileId(1), clock=100)
        assert release > 500

    def test_barrier_reusable_across_generations(self, mcp, wakes):
        for generation in range(3):
            mcp.barrier_arrive(BAR, 2, TileId(0), clock=generation * 100)
            assert mcp.barrier_arrive(BAR, 2, TileId(1),
                                      clock=generation * 100) is not None

    def test_double_arrival_faults(self, mcp):
        mcp.barrier_arrive(BAR, 3, TileId(0), clock=0)
        with pytest.raises(TargetFault):
            mcp.barrier_arrive(BAR, 3, TileId(0), clock=1)

    def test_count_mismatch_faults(self, mcp):
        mcp.barrier_arrive(BAR, 3, TileId(0), clock=0)
        with pytest.raises(TargetFault):
            mcp.barrier_arrive(BAR, 4, TileId(1), clock=0)

    def test_is_waiting_tracking(self, mcp):
        mcp.barrier_arrive(BAR, 2, TileId(0), clock=0)
        assert mcp.barrier_is_waiting(BAR, TileId(0))
        assert not mcp.barrier_is_waiting(BAR, TileId(1))
        mcp.barrier_arrive(BAR, 2, TileId(1), clock=0)
        assert not mcp.barrier_is_waiting(BAR, TileId(0))

    def test_single_participant_barrier(self, mcp):
        assert mcp.barrier_arrive(BAR, 1, TileId(0), clock=5) is not None

    def test_zero_participants_faults(self, mcp):
        with pytest.raises(TargetFault):
            mcp.barrier_arrive(BAR, 0, TileId(0), clock=0)


class TestServices:
    def test_futex_and_threads_present(self, mcp):
        assert mcp.futex is not None
        assert mcp.threads.live_count() == 0
        assert mcp.syscalls.sys_brk(0) > 0


class TestLcp:
    def test_one_lcp_per_process(self):
        layout = ClusterLayout(8, HostConfig(num_machines=2))
        lcps = create_lcps(layout, StatGroup("sys"))
        assert len(lcps) == 2

    def test_spawn_on_foreign_tile_rejected(self):
        layout = ClusterLayout(8, HostConfig(num_machines=2))
        lcps = create_lcps(layout, StatGroup("sys"))
        with pytest.raises(ValueError):
            lcps[ProcessId(0)].handle_spawn(TileId(1))  # tile 1 is P1's

    def test_spawn_counted(self):
        layout = ClusterLayout(8, HostConfig(num_machines=2))
        lcps = create_lcps(layout, StatGroup("sys"))
        lcps[ProcessId(0)].handle_spawn(TileId(0))
        lcps[ProcessId(0)].handle_spawn(TileId(2))
        assert lcps[ProcessId(0)].threads_spawned == 2
