"""System-call interface: the in-memory filesystem and memory calls."""

import pytest

from repro.common.errors import TargetFault
from repro.common.stats import StatGroup
from repro.memory.address import AddressSpace
from repro.memory.allocator import DynamicMemoryManager
from repro.system.syscalls import O_APPEND, O_CREAT, O_TRUNC, SyscallInterface


@pytest.fixture
def syscalls():
    allocator = DynamicMemoryManager(AddressSpace(4, 64))
    return SyscallInterface(allocator, StatGroup("sys"))


class TestFileIO:
    def test_write_then_read_through_shared_fd(self, syscalls):
        """The paper's motivating case: one thread writes, another
        reads via the same descriptor — consistent because the MCP owns
        the descriptor table."""
        fd = syscalls.sys_open("/tmp/data", O_CREAT)
        syscalls.sys_write(fd, b"hello world")
        syscalls.sys_lseek(fd, 0)
        assert syscalls.sys_read(fd, 5) == b"hello"
        assert syscalls.sys_read(fd, 100) == b" world"

    def test_open_missing_without_creat_faults(self, syscalls):
        with pytest.raises(TargetFault):
            syscalls.sys_open("/no/such/file")

    def test_two_descriptors_same_file(self, syscalls):
        a = syscalls.sys_open("/f", O_CREAT)
        syscalls.sys_write(a, b"abc")
        b = syscalls.sys_open("/f")
        assert syscalls.sys_read(b, 3) == b"abc"

    def test_truncate(self, syscalls):
        fd = syscalls.sys_open("/f", O_CREAT)
        syscalls.sys_write(fd, b"abcdef")
        syscalls.sys_close(fd)
        fd = syscalls.sys_open("/f", O_TRUNC)
        assert syscalls.sys_fstat(fd)["st_size"] == 0

    def test_append(self, syscalls):
        fd = syscalls.sys_open("/f", O_CREAT)
        syscalls.sys_write(fd, b"abc")
        syscalls.sys_close(fd)
        fd = syscalls.sys_open("/f", O_APPEND)
        syscalls.sys_write(fd, b"def")
        syscalls.sys_lseek(fd, 0)
        assert syscalls.sys_read(fd, 6) == b"abcdef"

    def test_sparse_write_zero_fills(self, syscalls):
        fd = syscalls.sys_open("/f", O_CREAT)
        syscalls.sys_lseek(fd, 4)
        syscalls.sys_write(fd, b"x")
        syscalls.sys_lseek(fd, 0)
        assert syscalls.sys_read(fd, 5) == b"\0\0\0\0x"

    def test_fstat_size(self, syscalls):
        fd = syscalls.sys_open("/f", O_CREAT)
        syscalls.sys_write(fd, b"12345")
        assert syscalls.sys_fstat(fd)["st_size"] == 5

    def test_close_invalidates_fd(self, syscalls):
        fd = syscalls.sys_open("/f", O_CREAT)
        syscalls.sys_close(fd)
        with pytest.raises(TargetFault):
            syscalls.sys_read(fd, 1)

    def test_unlink(self, syscalls):
        fd = syscalls.sys_open("/f", O_CREAT)
        syscalls.sys_close(fd)
        syscalls.sys_unlink("/f")
        with pytest.raises(TargetFault):
            syscalls.sys_open("/f")

    def test_stdout_write_succeeds(self, syscalls):
        assert syscalls.sys_write(1, b"log line") == 8

    def test_lseek_whences(self, syscalls):
        fd = syscalls.sys_open("/f", O_CREAT)
        syscalls.sys_write(fd, b"0123456789")
        assert syscalls.sys_lseek(fd, 2, 0) == 2
        assert syscalls.sys_lseek(fd, 3, 1) == 5
        assert syscalls.sys_lseek(fd, -1, 2) == 9
        with pytest.raises(TargetFault):
            syscalls.sys_lseek(fd, -100, 0)


class TestMemoryCalls:
    def test_brk_delegates(self, syscalls):
        current = syscalls.sys_brk(0)
        assert syscalls.sys_brk(current + 4096) == current + 4096

    def test_mmap_munmap(self, syscalls):
        base = syscalls.sys_mmap(8192)
        syscalls.sys_munmap(base, 8192)


class TestDispatch:
    def test_execute_by_name(self, syscalls):
        fd = syscalls.execute("open", ("/f", O_CREAT))
        assert syscalls.execute("write", (fd, b"x")) == 1

    def test_unknown_syscall_faults(self, syscalls):
        with pytest.raises(TargetFault):
            syscalls.execute("fork", ())

    def test_call_counting(self, syscalls):
        syscalls.sys_open("/f", O_CREAT)
        syscalls.sys_brk(0)
        assert syscalls._calls.value == 2
