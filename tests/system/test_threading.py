"""Thread manager: spawn allocation, exit, join."""

import pytest

from repro.common.errors import TargetFault
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.system.threading_api import ThreadManager


@pytest.fixture
def wakes():
    return []


@pytest.fixture
def manager(wakes):
    return ThreadManager(4, lambda t, ts: wakes.append((int(t), ts)),
                         StatGroup("threads"))


class TestAllocation:
    def test_allocates_lowest_free_tile(self, manager):
        assert manager.allocate_tile() == TileId(0)
        manager.register_spawn(TileId(0))
        assert manager.allocate_tile() == TileId(1)

    def test_thread_limit_enforced(self, manager):
        """Threads may not exceed the number of tiles (paper §3.5)."""
        for t in range(4):
            manager.register_spawn(TileId(manager.allocate_tile()))
        with pytest.raises(TargetFault):
            manager.allocate_tile()

    def test_finished_tile_reusable(self, manager):
        for t in range(4):
            manager.register_spawn(TileId(manager.allocate_tile()))
        manager.on_thread_exit(TileId(2), final_clock=100)
        assert manager.allocate_tile() == TileId(2)

    def test_live_count(self, manager):
        manager.register_spawn(TileId(0))
        manager.register_spawn(TileId(1))
        manager.on_thread_exit(TileId(0), 10)
        assert manager.live_count() == 1


class TestJoin:
    def test_join_finished_returns_clock(self, manager):
        manager.register_spawn(TileId(1))
        manager.on_thread_exit(TileId(1), final_clock=777)
        assert manager.try_join(TileId(0), TileId(1)) == 777

    def test_join_running_blocks_then_wakes(self, manager, wakes):
        manager.register_spawn(TileId(1))
        assert manager.try_join(TileId(0), TileId(1)) is None
        manager.on_thread_exit(TileId(1), final_clock=555)
        assert wakes == [(0, 555)]

    def test_multiple_joiners_all_woken(self, manager, wakes):
        manager.register_spawn(TileId(3))
        manager.try_join(TileId(0), TileId(3))
        manager.try_join(TileId(1), TileId(3))
        manager.on_thread_exit(TileId(3), final_clock=9)
        assert sorted(wakes) == [(0, 9), (1, 9)]

    def test_join_never_spawned_faults(self, manager):
        with pytest.raises(TargetFault):
            manager.try_join(TileId(0), TileId(2))

    def test_self_join_faults(self, manager):
        with pytest.raises(TargetFault):
            manager.try_join(TileId(1), TileId(1))

    def test_final_clock_query(self, manager):
        manager.register_spawn(TileId(1))
        assert manager.final_clock(TileId(1)) is None
        manager.on_thread_exit(TileId(1), 42)
        assert manager.final_clock(TileId(1)) == 42
