"""Event bus semantics: masks, channels, ordering, aggregation."""

from __future__ import annotations

import pickle

import pytest

from repro.common.config import SimulationConfig, TelemetryConfig
from repro.common.errors import ConfigError
from repro.telemetry.aggregate import TelemetryBatch, merge_batch, order_events
from repro.telemetry.bus import TelemetryBus, create_bus
from repro.telemetry.events import (
    ALL_CATEGORIES,
    Event,
    EventCategory,
    parse_event_mask,
)
from repro.telemetry.sinks import MemorySink


class TestEventMask:
    def test_all(self):
        assert parse_event_mask(["all"]) == ALL_CATEGORIES

    def test_single(self):
        assert parse_event_mask(["cache"]) == EventCategory.CACHE

    def test_union(self):
        mask = parse_event_mask(["cache", "network"])
        assert mask == (EventCategory.CACHE | EventCategory.NETWORK)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            parse_event_mask(["caches"])


class TestChannels:
    def test_disabled_config_builds_no_bus(self):
        assert create_bus(TelemetryConfig()) is None

    def test_masked_category_resolves_none(self):
        bus = TelemetryBus(parse_event_mask(["cache"]))
        assert bus.channel(EventCategory.CACHE) is not None
        assert bus.channel(EventCategory.NETWORK) is None

    def test_emit_reaches_store_and_sinks(self):
        bus = TelemetryBus(ALL_CATEGORIES)
        sink = bus.subscribe(MemorySink())
        bus.channel(EventCategory.SYNC).emit("stall", 3, 100,
                                             {"cycles": 7})
        assert len(bus.events) == 1
        assert len(sink.events) == 1
        event = sink.events[0]
        assert event.category_name == "sync"
        assert event.tile == 3 and event.t == 100
        assert event.args == {"cycles": 7}

    def test_seq_is_emission_order(self):
        bus = TelemetryBus(ALL_CATEGORIES)
        channel = bus.channel(EventCategory.QUANTUM)
        for t in (30, 10, 20):
            channel.emit("quantum", 0, t)
        assert [e.seq for e in bus.events] == [0, 1, 2]

    def test_ordered_events_sorts_by_time_then_origin_seq(self):
        bus = TelemetryBus(ALL_CATEGORIES)
        channel = bus.channel(EventCategory.QUANTUM)
        for t in (30, 10, 20):
            channel.emit("quantum", 0, t)
        bus.absorb([Event(EventCategory.SYNC, "stall", 1, 10)], origin=2)
        ordered = bus.ordered_events()
        assert [e.t for e in ordered] == [10, 10, 20, 30]
        # Coordinator (origin 0) sorts before the worker at equal t.
        assert [e.origin for e in ordered[:2]] == [0, 2]

    def test_drain_pending_empties_store(self):
        bus = TelemetryBus(ALL_CATEGORIES)
        bus.channel(EventCategory.DRAM).emit("read", 0, 5)
        drained = bus.drain_pending()
        assert len(drained) == 1
        assert bus.events == []


class TestAggregation:
    def test_batch_pickle_roundtrip(self):
        batch = TelemetryBatch(
            worker=1,
            events=[Event(EventCategory.SYNC, "stall", 2, 50,
                          {"cycles": 3}, seq=9)],
            histograms={"sim.h": {"count": 1, "total": 2.0,
                                  "sq_total": 4.0, "min": 2.0,
                                  "max": 2.0, "samples": [2.0],
                                  "stride": 1}})
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.worker == batch.worker
        assert clone.events == batch.events
        assert clone.histograms == batch.histograms
        assert len(clone) == 1

    def test_merge_batch_stamps_origin(self):
        bus = TelemetryBus(ALL_CATEGORIES)
        batch = TelemetryBatch(
            worker=3, events=[Event(EventCategory.SYNC, "stall", 0, 1)])
        merged = merge_batch(bus, None, batch)
        assert merged == 1
        assert bus.events[0].origin == 4  # worker index + 1
        assert bus.absorbed == 1

    def test_order_events_total_order(self):
        events = [Event(EventCategory.SYNC, "a", 0, 5, seq=1, origin=1),
                  Event(EventCategory.SYNC, "b", 0, 5, seq=0, origin=0),
                  Event(EventCategory.SYNC, "c", 0, 1, seq=7, origin=2)]
        assert [e.name for e in order_events(events)] == ["c", "b", "a"]

    def test_content_key_ignores_bookkeeping(self):
        a = Event(EventCategory.CACHE, "fill", 1, 9, {"line": 64},
                  seq=4, origin=0)
        b = Event(EventCategory.CACHE, "fill", 1, 9, {"line": 64},
                  seq=77, origin=3)
        assert a.content_key() == b.content_key()
        assert a != b  # full equality still sees seq/origin


class TestZeroOverheadContract:
    def test_disabled_run_has_no_bus_anywhere(self):
        from repro.sim.simulator import Simulator
        cfg = SimulationConfig(num_tiles=2)
        cfg.validate()
        sim = Simulator(cfg)
        assert sim.telemetry is None
        assert sim.scheduler._tele_quantum is None
        assert sim.fabric._tele is None

    def test_events_config_validated(self):
        cfg = SimulationConfig(num_tiles=2)
        cfg.telemetry.enabled = True
        cfg.telemetry.events = ["bogus"]
        with pytest.raises(ConfigError):
            cfg.validate()
