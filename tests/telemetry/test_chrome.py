"""Chrome trace-event exporter: structure Perfetto can load."""

from __future__ import annotations

import json

from repro.common.config import SimulationConfig
from repro.distrib.wire import WorkloadRef
from repro.sim.simulator import Simulator
from repro.telemetry.chrome import SIM_TRACK, write_chrome_trace
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import ALL_CATEGORIES, EventCategory


def _trace_doc(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    assert isinstance(doc, dict) and "traceEvents" in doc
    return doc["traceEvents"]


class TestExporter:
    def test_quantum_becomes_complete_event(self, tmp_path):
        bus = TelemetryBus(ALL_CATEGORIES)
        bus.channel(EventCategory.QUANTUM).emit(
            "quantum", 2, 1000,
            {"cycles": 1500, "instructions": 80, "status": "ran"})
        path = tmp_path / "t.json"
        n = write_chrome_trace(bus.ordered_events(), str(path),
                               clock_hz=1e9)
        assert n >= 1
        events = _trace_doc(path)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 1
        # 1000 cycles at 1 GHz = 1 us; 500 cycles duration = 0.5 us.
        assert complete[0]["ts"] == 1.0
        assert complete[0]["dur"] == 0.5
        assert complete[0]["tid"] == 2

    def test_message_becomes_flow_pair(self, tmp_path):
        bus = TelemetryBus(ALL_CATEGORIES)
        bus.channel(EventCategory.NETWORK).emit(
            "msg", 0, 100, {"src": 0, "dst": 3, "kind": "user",
                            "bytes": 8, "latency": 40})
        path = tmp_path / "t.json"
        write_chrome_trace(bus.ordered_events(), str(path))
        events = _trace_doc(path)
        start = [e for e in events if e["ph"] == "s"]
        finish = [e for e in events if e["ph"] == "f"]
        assert len(start) == 1 and len(finish) == 1
        assert start[0]["id"] == finish[0]["id"]
        assert start[0]["tid"] == 0 and finish[0]["tid"] == 3
        assert finish[0]["ts"] > start[0]["ts"]
        assert finish[0]["bp"] == "e"

    def test_dram_becomes_counter(self, tmp_path):
        bus = TelemetryBus(ALL_CATEGORIES)
        bus.channel(EventCategory.DRAM).emit(
            "read", 1, 10, {"occupancy": 3, "latency": 100, "bytes": 64})
        path = tmp_path / "t.json"
        write_chrome_trace(bus.ordered_events(), str(path))
        counters = [e for e in _trace_doc(path) if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["args"] == {"occupancy": 3}

    def test_tileless_events_land_on_sim_track(self, tmp_path):
        bus = TelemetryBus(ALL_CATEGORIES)
        bus.channel(EventCategory.SYNC).emit("clock_skew", None, 50,
                                             {"threads": 4})
        path = tmp_path / "t.json"
        write_chrome_trace(bus.ordered_events(), str(path))
        instants = [e for e in _trace_doc(path) if e["ph"] == "i"]
        assert instants[0]["tid"] == SIM_TRACK


class TestEndToEnd:
    def test_16_tile_mesh_run_produces_loadable_trace(self, tmp_path):
        """Acceptance: per-tile tracks, flow events, valid JSON."""
        path = tmp_path / "mesh.json"
        cfg = SimulationConfig(num_tiles=16, seed=3)
        cfg.network.memory_model = "mesh"
        cfg.telemetry.enabled = True
        cfg.telemetry.trace_path = str(path)
        cfg.validate()
        assert cfg.telemetry.resolved_trace_format() == "chrome"
        Simulator(cfg).run(WorkloadRef("fft", nthreads=8, scale=0.05))
        events = _trace_doc(path)
        assert events, "trace must not be empty"
        phases = {e["ph"] for e in events}
        assert {"X", "s", "f", "M"} <= phases
        tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert len(tids) > 1, "expected multiple per-tile tracks"
        metadata = {e["name"] for e in events if e["ph"] == "M"}
        assert "thread_name" in metadata
