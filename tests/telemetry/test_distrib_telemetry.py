"""Distributed aggregation: the mp backend's merged trace must match.

Acceptance bar, mirroring the backend-equivalence suite: same seed and
configuration ⇒ the coordinator's merged event stream has exactly the
same *content* as the in-process run's stream.  WORKER lifecycle
events are the one sanctioned difference (they describe mp-only
machinery), so they are filtered before comparison.
"""

from __future__ import annotations

from collections import Counter

from repro.common.config import SimulationConfig
from repro.distrib.wire import WorkloadRef
from repro.sim.runner import create_simulator
from repro.telemetry.events import EventCategory

REF = WorkloadRef("fmm", nthreads=4, scale=0.05)


def _config(backend: str, batch_events: int = 256) -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=4, seed=11)
    cfg.host.num_machines = 2
    cfg.host.cores_per_machine = 2
    cfg.distrib.backend = backend
    cfg.telemetry.enabled = True
    cfg.telemetry.batch_events = batch_events
    cfg.validate()
    return cfg


def _content(sim) -> Counter:
    return Counter(
        e.content_key() for e in sim.telemetry.ordered_events()
        if not (e.category & EventCategory.WORKER))


def test_mp_merged_trace_matches_inproc_content():
    inproc = create_simulator(_config("inproc"))
    res_a = inproc.run(REF)
    mp = create_simulator(_config("mp"))
    res_b = mp.run(REF)

    assert res_a.counters == res_b.counters  # tracing changed nothing
    assert res_a.simulated_cycles == res_b.simulated_cycles
    assert _content(inproc) == _content(mp)


def test_worker_batching_streams_events_mid_run():
    """A 1-event batch threshold forces TELEMETRY frames every quantum;
    content must be identical to the default batching."""
    eager = create_simulator(_config("mp", batch_events=1))
    res_eager = eager.run(REF)
    assert eager.telemetry.absorbed > 0  # events really crossed the wire

    lazy = create_simulator(_config("mp", batch_events=10_000))
    res_lazy = lazy.run(REF)
    assert res_eager.counters == res_lazy.counters
    assert _content(eager) == _content(lazy)


def test_mp_has_worker_lifecycle_events():
    sim = create_simulator(_config("mp"))
    sim.run(REF)
    names = {e.name for e in sim.telemetry.events
             if e.category & EventCategory.WORKER}
    assert {"worker_start", "interp_spawn", "worker_stop"} <= names


def test_tracing_never_perturbs_the_simulation():
    """Headline acceptance: byte-identical metrics tracing on vs off."""
    def run(enabled: bool):
        cfg = SimulationConfig(num_tiles=4, seed=11)
        cfg.telemetry.enabled = enabled
        cfg.validate()
        return create_simulator(cfg).run(REF)

    off, on = run(False), run(True)
    assert off.simulated_cycles == on.simulated_cycles
    assert off.counters == on.counters
    assert off.thread_cycles == on.thread_cycles
    assert off.wall_clock_seconds == on.wall_clock_seconds
