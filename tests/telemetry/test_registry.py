"""Metrics registry: counters and histograms become time series."""

from __future__ import annotations

from repro.common.config import SimulationConfig
from repro.common.stats import StatGroup
from repro.distrib.wire import WorkloadRef
from repro.sim.simulator import Simulator
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import ALL_CATEGORIES, EventCategory
from repro.telemetry.registry import MetricsRegistry


class TestRegistry:
    def test_counters_become_series(self):
        stats = StatGroup("sim")
        counter = stats.child("memory").counter("misses")
        registry = MetricsRegistry(stats, interval=10)
        counter.add(3)
        registry.sample(100)
        counter.add(4)
        registry.sample(200)
        series = registry.series["sim.memory.misses"]
        assert list(zip(series.times, series.values)) == [(100, 3),
                                                          (200, 7)]
        assert registry.samples_taken == 2

    def test_histograms_snapshot_quantiles(self):
        stats = StatGroup("sim")
        hist = stats.histogram("lat")
        for v in range(1, 101):
            hist.record(float(v))
        registry = MetricsRegistry(stats, interval=1)
        registry.sample(5)
        (snap,) = registry.histogram_series["sim.lat"]
        assert snap["t"] == 5
        assert snap["count"] == 100
        assert snap["min"] == 1.0 and snap["max"] == 100.0
        assert 40.0 <= snap["p50"] <= 60.0
        assert 90.0 <= snap["p95"] <= 100.0

    def test_sample_emits_metrics_event(self):
        stats = StatGroup("sim")
        stats.counter("c").add()
        bus = TelemetryBus(ALL_CATEGORIES)
        registry = MetricsRegistry(
            stats, interval=1, channel=bus.channel(EventCategory.METRICS))
        registry.sample(42)
        (event,) = bus.events
        assert event.category_name == "metrics"
        assert event.t == 42
        assert event.args["n"] == 1

    def test_to_dict_shape(self):
        stats = StatGroup("sim")
        stats.counter("c").add(2)
        registry = MetricsRegistry(stats, interval=4)
        registry.sample(1)
        doc = registry.to_dict()
        assert doc["interval"] == 4
        assert doc["samples"] == 1
        assert doc["series"]["sim.c"] == [(1, 2)]


class TestSimulatorIntegration:
    def test_metrics_interval_drives_sampling(self):
        cfg = SimulationConfig(num_tiles=4, seed=5)
        cfg.telemetry.enabled = True
        cfg.telemetry.metrics_interval = 8
        cfg.validate()
        sim = Simulator(cfg)
        sim.run(WorkloadRef("fft", nthreads=4, scale=0.05))
        assert sim.metrics is not None
        assert sim.metrics.samples_taken > 0
        # Monotone non-decreasing counter series, timestamped.
        series = sim.metrics.series["sim.network.memory_net.packets"]
        assert series.values == sorted(series.values)
        assert series.times == sorted(series.times)

    def test_disabled_means_no_registry(self):
        cfg = SimulationConfig(num_tiles=2)
        cfg.validate()
        assert Simulator(cfg).metrics is None
