"""Sink behaviour: JSONL streaming, logger piggybacking, memory."""

from __future__ import annotations

import json
import logging

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import ALL_CATEGORIES, EventCategory
from repro.telemetry.sinks import JsonlTraceSink, LoggerSink, MemorySink


def _bus_with(sink):
    bus = TelemetryBus(ALL_CATEGORIES)
    bus.subscribe(sink)
    return bus


class TestJsonlSink:
    def test_one_line_per_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path))
        bus = _bus_with(sink)
        channel = bus.channel(EventCategory.CACHE)
        channel.emit("fill", 0, 10, {"line": 0x40})
        channel.emit("evict", 1, 20, {"line": 0x80, "dirty": True})
        bus.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert sink.lines_written == 2
        first = json.loads(lines[0])
        assert first["cat"] == "cache"
        assert first["name"] == "fill"
        assert first["tile"] == 0
        assert first["t"] == 10
        assert first["args"] == {"line": 0x40}

    def test_no_events_no_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = _bus_with(JsonlTraceSink(str(path)))
        bus.close()
        assert not path.exists()

    def test_unjsonable_args_fall_back_to_repr(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = _bus_with(JsonlTraceSink(str(path)))
        bus.channel(EventCategory.SYNC).emit("stall", 0, 0,
                                             {"obj": object()})
        bus.close()
        record = json.loads(path.read_text())
        assert "object object" in record["args"]["obj"]


class TestLoggerSink:
    def test_reuses_namespaced_loggers(self, caplog):
        bus = _bus_with(LoggerSink())
        with caplog.at_level(logging.DEBUG,
                             logger="repro.telemetry.dram"):
            bus.channel(EventCategory.DRAM).emit("read", 2, 7,
                                                 {"occupancy": 1})
            bus.channel(EventCategory.CACHE).emit("fill", 0, 0)
        names = [r.name for r in caplog.records]
        assert "repro.telemetry.dram" in names
        # The cache logger stayed at its default level: no record.
        assert "repro.telemetry.cache" not in names
        assert "read" in caplog.text


class TestMemorySink:
    def test_collects_and_closes(self):
        sink = MemorySink()
        bus = _bus_with(sink)
        bus.channel(EventCategory.NETWORK).emit("msg", 0, 1)
        bus.close()
        assert len(sink) == 1
        assert sink.closed
