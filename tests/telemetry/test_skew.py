"""Clock-skew sampling: Figure 7's data source, now telemetry-backed.

The paper's qualitative claim (§3.6, Figure 7): the lax models bound
skew progressively tighter — Lax lets clocks stray furthest, LaxP2P
clamps outliers pairwise, LaxBarrier bounds skew by the quantum.  The
skew *envelope* (max deviation minus min deviation) must therefore
nest: Lax ⊇ LaxP2P ⊇ LaxBarrier.
"""

from __future__ import annotations

import pytest

from repro.common.config import SimulationConfig
from repro.distrib.wire import WorkloadRef
from repro.sim.simulator import Simulator
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import ALL_CATEGORIES, EventCategory
from repro.telemetry.skew import ClockSkewSampler


class _FakeScheduler:
    def __init__(self, clocks):
        self._clocks = clocks

    def active_thread_clocks(self):
        return self._clocks


class TestSampler:
    def test_records_mean_and_deviations(self):
        trace = []
        sampler = ClockSkewSampler(trace)
        sampler(_FakeScheduler([100, 200, 300]))
        assert trace == [(200.0, 100.0, -100.0)]

    def test_fewer_than_two_clocks_skipped(self):
        trace = []
        sampler = ClockSkewSampler(trace)
        sampler(_FakeScheduler([]))
        sampler(_FakeScheduler([500]))
        assert trace == []

    def test_emits_sync_event_when_channel_attached(self):
        bus = TelemetryBus(ALL_CATEGORIES)
        trace = []
        sampler = ClockSkewSampler(trace,
                                   bus.channel(EventCategory.SYNC))
        sampler(_FakeScheduler([100, 300]))
        (event,) = bus.events
        assert event.name == "clock_skew"
        assert event.t == 200
        assert event.args == {"max_dev": 100.0, "min_dev": -100.0,
                              "threads": 2}


def _skew_run(model: str):
    cfg = SimulationConfig(num_tiles=8, seed=7)
    cfg.sync.model = model
    cfg.trace_clock_skew = True
    cfg.skew_sample_period = 8
    cfg.validate()
    result = Simulator(cfg).run(WorkloadRef("fmm", nthreads=8, scale=0.1))
    assert result.skew_trace, f"{model}: no skew samples"
    return max(hi - lo for _, hi, lo in result.skew_trace)


@pytest.mark.slow
def test_fmm_skew_envelopes_nest_across_sync_models():
    lax = _skew_run("lax")
    p2p = _skew_run("lax_p2p")
    barrier = _skew_run("lax_barrier")
    assert lax >= p2p >= barrier
    # The barrier bounds skew by orders of magnitude versus pure lax.
    assert barrier < lax


def test_skew_trace_identical_with_telemetry_on():
    """The sampler is observational: the Figure 7 data is unchanged."""
    def run(enabled: bool):
        cfg = SimulationConfig(num_tiles=4, seed=11)
        cfg.trace_clock_skew = True
        cfg.skew_sample_period = 8
        cfg.telemetry.enabled = enabled
        cfg.validate()
        return Simulator(cfg).run(
            WorkloadRef("fft", nthreads=4, scale=0.05)).skew_trace

    assert run(False) == run(True)
