"""The clock-skew sampler under elastic membership (ISSUE satellite).

Figure 7's data source must be membership-blind: a run whose workers
drain, migrate shards or change transport mid-flight samples the same
skew trace as the undisturbed in-process run — tile placement is
host-side bookkeeping, and the sampler reads only simulated clocks.
"""

from __future__ import annotations

import pytest

from repro.common.config import SimulationConfig
from repro.distrib.wire import WorkloadRef
from repro.sim.runner import create_simulator
from repro.sim.simulator import Simulator

REF = WorkloadRef("matrix_multiply", nthreads=4, scale=0.05)


def _base_config() -> SimulationConfig:
    cfg = SimulationConfig(num_tiles=4, seed=11)
    cfg.host.num_machines = 2
    cfg.host.cores_per_machine = 2
    cfg.host.quantum_instructions = 200
    cfg.trace_clock_skew = True
    cfg.skew_sample_period = 4
    return cfg


def _mp_config(**distrib) -> SimulationConfig:
    cfg = _base_config()
    cfg.distrib.backend = "mp"
    for key, value in distrib.items():
        setattr(cfg.distrib, key, value)
    cfg.validate()
    return cfg


def _inproc_trace():
    cfg = _base_config()
    cfg.validate()
    result = Simulator(cfg).run(REF)
    assert result.skew_trace, "no skew samples in the reference run"
    return result.skew_trace


def test_skew_trace_survives_a_pipe_drain():
    """A scripted drain (worker 0 hands its shard off mid-run) leaves
    the sampled skew trace identical to the in-process run's."""
    reference = _inproc_trace()
    drained = create_simulator(_mp_config(
        transport="pipe", drain_turn=2, drain_worker=0)).run(REF)
    assert drained.skew_trace == reference


@pytest.mark.slow
def test_skew_trace_survives_a_tcp_drain():
    reference = _inproc_trace()
    drained = create_simulator(_mp_config(
        transport="tcp", drain_turn=3)).run(REF)
    assert drained.skew_trace == reference


def test_skew_trace_identical_with_watchdog_armed():
    """The straggler watchdog shares the rebalance busy-ns signal;
    arming it must not perturb the sampled skew (it is host-side)."""
    plain = create_simulator(_mp_config(transport="pipe")).run(REF)
    watched_cfg = _mp_config(transport="pipe", straggler_fraction=0.5)
    watched_cfg.telemetry.enabled = True
    watched_cfg.telemetry.events = ["obs", "sync"]
    watched_cfg.validate()
    watched = create_simulator(watched_cfg).run(REF)
    assert watched.skew_trace == plain.skew_trace
    assert plain.skew_trace == _inproc_trace()
