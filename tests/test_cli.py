"""The command-line interface."""

import json

import pytest

from repro.cli import main
from repro.workloads import WORKLOADS


class TestListWorkloads:
    def test_lists_all(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        for name in WORKLOADS:
            assert name in out


class TestShowConfig:
    def test_emits_valid_json_defaults(self, capsys):
        assert main(["show-config"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_tiles"] == 32
        assert data["memory"]["l2"]["size_bytes"] == 3 * 1024 * 1024


class TestRun:
    def test_text_output(self, capsys):
        code = main(["run", "--workload", "fmm", "--tiles", "4",
                     "--scale", "0.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated run-time" in out
        assert "slowdown" in out

    def test_json_output(self, capsys):
        code = main(["run", "--workload", "cholesky", "--tiles", "4",
                     "--scale", "0.2", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["workload"] == "cholesky"
        assert data["simulated_cycles"] > 0
        assert data["instructions"] > 0

    def test_threads_defaults_to_tiles(self, capsys):
        main(["run", "--workload", "fmm", "--tiles", "4",
              "--scale", "0.2", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["threads"] == 4

    def test_directory_and_sync_options(self, capsys):
        code = main(["run", "--workload", "blackscholes", "--tiles",
                     "4", "--scale", "0.2", "--directory", "limitless",
                     "--sync", "lax_p2p", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["sync"] == "lax_p2p"

    def test_classify_misses(self, capsys):
        main(["run", "--workload", "fmm", "--tiles", "4", "--scale",
              "0.2", "--classify-misses", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert sum(data["miss_breakdown"].values()) > 0

    def test_quantum_override(self, capsys):
        code = main(["run", "--workload", "fmm", "--tiles", "4",
                     "--scale", "0.2", "--quantum", "100", "--json"])
        assert code == 0

    def test_unknown_workload_fails(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            main(["run", "--workload", "specint"])

    def test_bad_choice_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "fmm", "--sync", "strict"])

    def test_machines_option(self, capsys):
        main(["run", "--workload", "fmm", "--tiles", "4", "--scale",
              "0.2", "--machines", "2", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["machines"] == 2


class TestCheckpointCli:
    def test_run_then_resume_matches(self, tmp_path, capsys):
        """`repro run --ckpt-dir` then `repro resume` end-to-end: the
        resumed run reports the same metrics as the checkpointed run
        (the CI resume-smoke job is this flow across two processes)."""
        ckpt = str(tmp_path / "ck")
        code = main(["run", "--workload", "matrix_multiply", "--tiles",
                     "4", "--scale", "0.05", "--quantum", "200",
                     "--ckpt-dir", ckpt, "--ckpt-every", "20",
                     "--json"])
        assert code == 0
        original = json.loads(capsys.readouterr().out)
        assert original["recoveries"] == []

        assert main(["resume", ckpt, "--json"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        shared = set(original) & set(resumed)
        assert "simulated_cycles" in shared
        for key in shared:
            assert resumed[key] == original[key], key

    def test_resume_text_output(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ck")
        main(["run", "--workload", "matrix_multiply", "--tiles", "4",
              "--scale", "0.05", "--quantum", "200",
              "--ckpt-dir", ckpt, "--ckpt-every", "20", "--json"])
        capsys.readouterr()
        assert main(["resume", ckpt]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "simulated run-time" in out

    def test_ckpt_every_requires_dir(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError, match="ckpt-dir"):
            main(["run", "--workload", "fmm", "--tiles", "4",
                  "--scale", "0.2", "--ckpt-every", "10"])

    def test_resume_without_checkpoint_fails(self, tmp_path):
        from repro.common.errors import CheckpointError
        with pytest.raises(CheckpointError, match="no checkpoint"):
            main(["resume", str(tmp_path / "nothing-here")])
