"""The shipped examples must run cleanly (they are the quickstart docs)."""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "simulated run-time" in out
        assert "slowdown" in out

    def test_custom_workload(self, capsys):
        out = run_example("custom_workload.py", capsys)
        assert "all jobs accounted for: True" in out

    def test_trace_replay(self, capsys):
        out = run_example("trace_replay.py", capsys)
        assert "captured" in out
        assert "out-of-order core" in out

    def test_network_exploration(self, capsys):
        out = run_example("network_exploration.py", capsys)
        assert "mesh_contention" in out

    @pytest.mark.slow
    def test_sync_tradeoffs(self, capsys):
        out = run_example("sync_tradeoffs.py", capsys)
        assert "lax_barrier" in out

    @pytest.mark.slow
    def test_coherence_study(self, capsys):
        out = run_example("coherence_study.py", capsys)
        assert "Dir4NB" in out
