"""Regression tests for bugs found while reproducing the paper.

Each test pins one failure mode discovered during development (see
DESIGN.md §5a); if a refactor reintroduces it, these fail long before
the benchmark shapes drift.
"""

import pytest

from repro.common.config import SimulationConfig
from repro.common.stats import StatGroup
from repro.sim.simulator import Simulator
from repro.sync.progress import ProgressEstimator
from repro.sync.queue_model import LaxQueueModel
from repro.workloads import get_workload
from tests.conftest import tiny_config


class TestQueueModelDivergence:
    """A run-ahead tile's timestamps must not poison queue delays."""

    def test_outlier_timestamp_does_not_charge_skew(self):
        progress = ProgressEstimator(32)
        queue = LaxQueueModel(progress, StatGroup("q"))
        for _ in range(31):
            queue.access(1_000, 10)
        # One tile a billion cycles ahead touches the queue...
        queue.access(1_000_000_000, 10)
        # ...and the next normal-time packet is NOT billed eons.
        delay = queue.access(1_200, 10)
        assert delay < 32 * 10 + 10 + 1

    def test_delay_bounded_by_backlog(self):
        progress = ProgressEstimator(8)
        queue = LaxQueueModel(progress, StatGroup("q"))
        for _ in range(1000):  # way past saturation
            total = queue.access(100, 50)
            assert total <= 8 * 50 + 50

    def test_cycle_counts_stay_sane_at_32_tiles(self):
        """The original failure: fft at 32 tiles produced CPI ~1000 via
        queue-delay feedback.  Pin a generous ceiling."""
        config = SimulationConfig(num_tiles=32)
        result = Simulator(config).run(
            get_workload("fft").main(nthreads=32, scale=0.25))
        per_thread_cycles = result.simulated_cycles
        per_thread_instr = result.total_instructions / 32
        assert per_thread_cycles / per_thread_instr < 200


class TestWakeClockStaleness:
    """Woken threads forward clocks eagerly (Figure 7 spike fix)."""

    def test_barrier_waiter_clock_fresh_after_release(self):
        def worker(ctx, index, barrier):
            yield from ctx.compute(100 if index else 50_000)
            yield from ctx.barrier(barrier, 2)

        def main(ctx):
            barrier = yield from ctx.calloc(8, align=64)
            thread = yield from ctx.spawn(worker, 0, barrier)
            yield from worker(ctx, 1, barrier)
            yield from ctx.join(thread)

        simulator = Simulator(tiny_config(2))
        simulator.run(main)
        clocks = [i.core.cycles
                  for i in simulator.interpreters.values()]
        # Both ended within a whisker of each other, not 50k apart.
        assert max(clocks) - min(clocks) < 10_000


class TestSpawnSerialization:
    """Thread spawn must not serialize large fleets (Figure 5 fix)."""

    def test_spawn_cost_small_relative_to_work(self):
        def worker(ctx, index):
            yield from ctx.compute(5_000)

        def main(ctx):
            threads = yield from ctx.spawn_workers(worker, 63)
            yield from ctx.join_all(threads)

        config = SimulationConfig(num_tiles=64)
        result = Simulator(config).run(main)
        # 63 spawns at the configured cost must stay a modest fraction
        # of total host time.
        spawn_cost = 63 * config.host.thread_spawn_cost
        assert spawn_cost < 0.5 * result.wall_clock_seconds


class TestSystemTrafficExemption:
    """Control-plane messages carry no blocking latency."""

    def test_syscall_storm_does_not_stall_host(self):
        def main(ctx):
            for _ in range(200):
                yield from ctx.syscall("brk", 0)
            return True

        config = tiny_config(2)
        config.host.num_machines = 2
        result = Simulator(config).run(main)
        busy = sum(result.core_busy_seconds.values())
        # Wall is busy + startup, not inflated by per-syscall wire waits.
        startup = config.host.process_startup_cost * 2
        assert result.wall_clock_seconds == pytest.approx(
            busy + startup, rel=0.3)


class TestComputeChunking:
    """One huge Compute op must not swallow a whole quantum budget
    (skew sampling and barrier epochs depend on op granularity)."""

    def test_big_compute_spans_many_quanta(self):
        def main(ctx):
            yield from ctx.compute(100_000)

        config = tiny_config(1)
        config.host.quantum_instructions = 500
        simulator = Simulator(config)
        simulator.run(main)
        thread = next(iter(simulator.scheduler.threads.values()))
        assert thread.quanta > 50
