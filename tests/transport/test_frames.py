"""Length-prefixed framing tests: round trips, truncation, limits."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.common.errors import TransportError
from repro.transport.frames import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    recv_frame,
    send_frame,
    try_recv_frame,
)


def _pair():
    return socket.socketpair()


def test_round_trip_preserves_bytes():
    a, b = _pair()
    try:
        for payload in (b"", b"x", b"hello" * 1000, bytes(range(256))):
            send_frame(a, payload)
            assert recv_frame(b) == payload
    finally:
        a.close()
        b.close()


def test_frames_keep_boundaries():
    a, b = _pair()
    try:
        send_frame(a, b"first")
        send_frame(a, b"second")
        assert recv_frame(b) == b"first"
        assert recv_frame(b) == b"second"
    finally:
        a.close()
        b.close()


def test_large_frame_crosses_in_chunks():
    # Bigger than any single send/recv buffer, forcing partial reads.
    payload = b"\xab" * (4 * 1024 * 1024)
    a, b = _pair()
    try:
        writer = threading.Thread(target=send_frame, args=(a, payload))
        writer.start()
        received = recv_frame(b)
        writer.join()
        assert received == payload
    finally:
        a.close()
        b.close()


def test_oversized_frame_rejected_before_send():
    a, b = _pair()
    try:
        with pytest.raises(TransportError):
            send_frame(a, b"x" * (MAX_FRAME_BYTES + 1))
    finally:
        a.close()
        b.close()


def test_clean_eof_is_none_from_try_recv():
    a, b = _pair()
    a.close()
    try:
        assert try_recv_frame(b) is None
    finally:
        b.close()


def test_truncated_frame_raises():
    a, b = _pair()
    try:
        # Length prefix promises 100 bytes; deliver 3 and hang up.
        import struct
        a.sendall(struct.pack(">I", 100) + b"abc")
        a.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(b)
    finally:
        b.close()


def test_mid_frame_eof_raises_even_for_try_recv():
    import struct
    a, b = _pair()
    try:
        a.sendall(struct.pack(">I", 8))
        a.close()
        with pytest.raises(ConnectionClosed):
            try_recv_frame(b)
    finally:
        b.close()
