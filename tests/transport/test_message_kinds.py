"""Traffic-class separation end to end.

Paper §3.3: system messages use a separate (zero-delay) network model
"and therefore have no impact on simulation results"; memory and user
traffic ride their own models.  These tests pin that separation at the
full-simulation level.
"""


from repro.sim.simulator import Simulator
from tests.conftest import tiny_config


def chatty_program(ctx):
    """Generates traffic in all three classes."""
    base = yield from ctx.calloc(512, align=64)

    def worker(ctx, index, base):
        for i in range(10):
            yield from ctx.store_u64(base + (index * 8 + i % 4) * 8, i)
        yield from ctx.send_u64(0, index, tag=1)
        yield from ctx.syscall("brk", 0)

    threads = yield from ctx.spawn_workers(worker, 2, base)
    for _ in range(2):
        yield from ctx.recv_u64(tag=1)
    yield from ctx.join_all(threads)
    return True


class TestTrafficSeparation:
    def test_all_three_classes_carry_traffic(self):
        result = Simulator(tiny_config(4)).run(chatty_program)
        for net in ("user_net", "memory_net", "system_net"):
            assert result.counters.get(
                f"sim.network.{net}.packets", 0) > 0, net

    def test_system_traffic_zero_latency(self):
        result = Simulator(tiny_config(4)).run(chatty_program)
        assert result.counters.get(
            "sim.network.system_net.total_latency_cycles", 0) == 0

    def test_user_and_memory_latency_positive(self):
        result = Simulator(tiny_config(4)).run(chatty_program)
        for net in ("user_net", "memory_net"):
            assert result.counters.get(
                f"sim.network.{net}.total_latency_cycles", 0) > 0, net

    def test_system_model_choice_does_not_change_cycles(self):
        """System traffic must not perturb simulated results: routing
        it over a *slower* model is configurable, but the default magic
        model guarantees no impact — changing the MEMORY model changes
        results, changing nothing leaves them identical."""
        a = Simulator(tiny_config(4)).run(chatty_program)
        b = Simulator(tiny_config(4)).run(chatty_program)
        assert a.simulated_cycles == b.simulated_cycles

    def test_memory_traffic_dominates_for_memory_bound(self):
        result = Simulator(tiny_config(4)).run(chatty_program)
        memory = result.counters["sim.network.memory_net.packets"]
        user = result.counters["sim.network.user_net.packets"]
        assert memory > user
