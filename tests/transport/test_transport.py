"""Physical transport: delivery, ordering, filtering, accounting."""

import pytest

from repro.common.config import HostConfig
from repro.common.errors import TransportError
from repro.common.ids import TileId
from repro.host.cluster import ClusterLayout, Locality
from repro.transport.message import Message, MessageKind
from repro.transport.transport import Transport


@pytest.fixture
def transport():
    layout = ClusterLayout(8, HostConfig(num_machines=2))
    return Transport(layout)


def msg(src, dst, kind=MessageKind.USER, payload=None, size=8, tag=None):
    return Message(src=TileId(src), dst=TileId(dst), kind=kind,
                   payload=payload, size_bytes=size, tag=tag)


class TestDelivery:
    def test_send_then_poll(self, transport):
        transport.send(msg(0, 1, payload="hello"))
        got = transport.poll(TileId(1), MessageKind.USER)
        assert got.payload == "hello"

    def test_poll_empty_returns_none(self, transport):
        assert transport.poll(TileId(1), MessageKind.USER) is None

    def test_fifo_order_preserved(self, transport):
        for i in range(5):
            transport.send(msg(0, 1, payload=i))
        got = [transport.poll(TileId(1), MessageKind.USER).payload
               for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_kinds_have_separate_queues(self, transport):
        transport.send(msg(0, 1, kind=MessageKind.MEMORY, payload="m"))
        transport.send(msg(0, 1, kind=MessageKind.USER, payload="u"))
        assert transport.poll(TileId(1), MessageKind.USER).payload == "u"
        assert transport.poll(TileId(1), MessageKind.MEMORY).payload == "m"

    def test_send_returns_locality(self, transport):
        assert transport.send(msg(0, 1)) is Locality.CROSS_MACHINE
        assert transport.send(msg(0, 2)) is Locality.SAME_PROCESS

    def test_out_of_range_destination_rejected(self, transport):
        with pytest.raises(TransportError):
            transport.send(msg(0, 99))

    def test_out_of_range_source_rejected(self, transport):
        with pytest.raises(TransportError):
            transport.send(msg(99, 0))


class TestFiltering:
    def test_poll_match_by_src(self, transport):
        transport.send(msg(2, 1, payload="a"))
        transport.send(msg(3, 1, payload="b"))
        got = transport.poll_match(TileId(1), MessageKind.USER,
                                   src=TileId(3))
        assert got.payload == "b"
        # Non-matching message stays queued, in order.
        assert transport.poll(TileId(1), MessageKind.USER).payload == "a"

    def test_poll_match_by_tag(self, transport):
        transport.send(msg(0, 1, payload="x", tag=1))
        transport.send(msg(0, 1, payload="y", tag=2))
        assert transport.poll_match(TileId(1), MessageKind.USER,
                                    tag=2).payload == "y"

    def test_poll_match_no_match(self, transport):
        transport.send(msg(0, 1, tag=1))
        assert transport.poll_match(TileId(1), MessageKind.USER,
                                    tag=9) is None
        assert transport.pending(TileId(1), MessageKind.USER) == 1


class TestAccounting:
    def test_hooks_fire_on_send(self, transport):
        events = []
        transport.add_delivery_hook(lambda m, loc: events.append(loc))
        transport.send(msg(0, 1))
        assert events == [Locality.CROSS_MACHINE]

    def test_account_fires_hooks_without_enqueue(self, transport):
        events = []
        transport.add_delivery_hook(lambda m, loc: events.append(loc))
        transport.account(TileId(0), TileId(2), MessageKind.MEMORY, 64)
        assert events == [Locality.SAME_PROCESS]
        assert transport.total_pending() == 0

    def test_byte_and_message_counters(self, transport):
        transport.send(msg(0, 1, size=100))
        transport.account(TileId(0), TileId(1), MessageKind.MEMORY, 50)
        assert transport.stats.counter("messages_sent").value == 2
        assert transport.stats.counter("bytes_sent").value == 150

    def test_locality_counters(self, transport):
        transport.send(msg(0, 2))  # same process
        transport.send(msg(0, 1))  # cross machine
        assert transport.stats.counter("messages_same_process").value == 1
        assert transport.stats.counter("messages_cross_machine").value == 1


class TestMessage:
    def test_latency_from_timestamps(self):
        m = msg(0, 1)
        m.timestamp = 100
        m.arrival_time = 150
        assert m.latency == 50

    def test_latency_never_negative(self):
        m = msg(0, 1)
        m.timestamp = 100
        m.arrival_time = 50
        assert m.latency == 0

    def test_sequence_numbers_monotonic(self):
        a, b = msg(0, 1), msg(0, 1)
        assert b.seqno > a.seqno

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            msg(0, 1, size=-1)
