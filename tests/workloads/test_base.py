"""Workload-construction helpers in repro.workloads.base."""

import pytest

from repro.common.errors import ConfigError
from repro.sim.simulator import Simulator
from repro.workloads.base import (
    WORKLOADS,
    WorkloadFactory,
    fork_join_main,
    get_workload,
    register_workload,
    stream_touch,
)
from tests.conftest import tiny_config


class TestRegistry:
    def test_register_then_get(self):
        factory = WorkloadFactory(name="__test_dummy__",
                                  build=lambda nthreads, scale: None,
                                  description="test")
        try:
            register_workload(factory)
            assert get_workload("__test_dummy__") is factory
        finally:
            del WORKLOADS["__test_dummy__"]

    def test_duplicate_rejected(self):
        name = next(iter(WORKLOADS))
        with pytest.raises(ConfigError):
            register_workload(WorkloadFactory(name=name,
                                              build=lambda: None))

    def test_main_passes_parameters(self):
        captured = {}

        def build(nthreads, scale, extra=0):
            captured.update(nthreads=nthreads, scale=scale, extra=extra)
            return lambda ctx: iter(())

        factory = WorkloadFactory(name="__params__", build=build)
        factory.main(nthreads=4, scale=2.0, extra=7)
        assert captured == {"nthreads": 4, "scale": 2.0, "extra": 7}


class TestForkJoinMain:
    def test_setup_fork_work_join_teardown(self):
        def setup(ctx):
            base = yield from ctx.calloc(64, align=64)
            return base

        def worker(ctx, index, base):
            value = yield from ctx.load_u64(base + index * 8)
            yield from ctx.store_u64(base + index * 8, value + index)

        def teardown(ctx, base):
            total = 0
            for i in range(4):
                total += yield from ctx.load_u64(base + i * 8)
            return total

        main = fork_join_main(worker, nthreads=4, setup=setup,
                              teardown=teardown)
        result = Simulator(tiny_config(4)).run(main)
        assert result.main_result == 0 + 1 + 2 + 3

    def test_main_participates_as_worker_zero(self):
        seen = []

        def worker(ctx, index, state):
            seen.append(index)
            yield from ctx.compute(1)

        main = fork_join_main(worker, nthreads=3)
        Simulator(tiny_config(3)).run(main)
        assert sorted(seen) == [0, 1, 2]

    def test_without_setup_or_teardown(self):
        def worker(ctx, index, state):
            yield from ctx.compute(5)

        main = fork_join_main(worker, nthreads=2)
        result = Simulator(tiny_config(2)).run(main)
        assert result.main_result is None


class TestStreamTouch:
    def test_reads_and_optionally_writes(self):
        def main(ctx):
            base = yield from ctx.calloc(256, align=64)
            yield from stream_touch(ctx, base, count=16, stride=8,
                                    write=True)
            return (yield from ctx.load_u64(base))

        result = Simulator(tiny_config(2)).run(main)
        # The write transformed the initial zero deterministically.
        assert result.main_result == 3037000493

    def test_read_only_leaves_memory(self):
        def main(ctx):
            base = yield from ctx.calloc(128, align=64)
            yield from ctx.store_u64(base, 9)
            yield from stream_touch(ctx, base, count=8, stride=8,
                                    write=False)
            return (yield from ctx.load_u64(base))

        assert Simulator(tiny_config(2)).run(main).main_result == 9
