"""Per-workload pattern details that the experiments rely on."""


from repro.sim.simulator import Simulator
from repro.workloads import get_workload
from tests.conftest import tiny_config


def run(name, tiles=4, classify=False, **params):
    cfg = tiny_config(tiles)
    cfg.memory.classify_misses = classify
    simulator = Simulator(cfg)
    program = get_workload(name).main(nthreads=tiles, **params)
    result = simulator.run(program)
    simulator.engine.check_coherence_invariants()
    return result


class TestFft:
    def test_transpose_reads_remote_chunks(self):
        """The all-to-all phase forces inter-tile coherence traffic."""
        result = run("fft", scale=0.2)
        assert result.counter("read_misses") > 0
        # Shared (sharing) misses, not just cold: the transpose reads
        # data the owners wrote.
        classified = run("fft", scale=0.2, classify=True)
        sharing = classified.miss_breakdown.get("true_sharing", 0)
        assert sharing > 0

    def test_point_count_rounds_to_transpose_block(self):
        """points_per_thread must divide by nthreads for the transpose."""
        result = run("fft", tiles=4, points=1000)
        assert result.main_result is not None


class TestRadix:
    def test_sorted_at_larger_scale(self):
        assert run("radix", scale=0.5).main_result is True

    def test_histogram_columns_published(self):
        result = run("radix", scale=0.2)
        # The hist array writes create upgrades/invalidations between
        # neighbouring threads' columns.
        assert result.counter("write_misses") > 0

    def test_radix_parameter(self):
        assert run("radix", scale=0.2, radix=16).main_result is True


class TestWater:
    def test_nsquared_uses_per_molecule_locks(self):
        result = run("water_nsquared", scale=0.4, lock_every=2)
        # Lock words really get contended (futex waits observed) or at
        # least acquired; the RMW traffic shows as write misses.
        assert result.counter("write_misses") > 0

    def test_spatial_iterations_parameter(self):
        one = run("water_spatial", scale=0.3, iterations=1)
        three = run("water_spatial", scale=0.3, iterations=3)
        assert three.total_instructions > 2 * one.total_instructions

    def test_spatial_less_traffic_than_nsquared(self):
        spatial = run("water_spatial", scale=0.3)
        nsq = run("water_nsquared", scale=0.3)

        def per_instruction_bytes(result):
            return result.counter("transport.bytes_sent") \
                / result.total_instructions

        assert per_instruction_bytes(spatial) < \
            per_instruction_bytes(nsq)


class TestBarnes:
    def test_tree_is_read_shared(self):
        result = run("barnes", scale=0.3, classify=True)
        # The rebuild invalidates readers: true sharing must appear.
        assert result.miss_breakdown.get("true_sharing", 0) > 0

    def test_iterations_parameter(self):
        one = run("barnes", scale=0.3, iterations=1)
        two = run("barnes", scale=0.3, iterations=2)
        assert two.total_instructions > one.total_instructions


class TestCholesky:
    def test_task_queue_drains_completely(self):
        assert run("cholesky", scale=0.5).main_result is True

    def test_lock_serializes_queue_pops(self):
        result = run("cholesky", scale=0.5)
        assert result.counter("mcp.futex.futex_waits") >= 0
        assert result.counter("upgrades") > 0


class TestMatmul:
    def test_ring_messages_per_step(self):
        result = run("matrix_multiply", tiles=4, block=3, steps=3)
        # steps * nthreads ring messages.
        assert result.counter("network.user_net.packets") == 3 * 4

    def test_blocks_are_line_padded(self):
        """No false sharing between neighbouring C blocks."""
        cfg = tiny_config(4)
        cfg.memory.classify_misses = True
        simulator = Simulator(cfg)
        program = get_workload("matrix_multiply").main(
            nthreads=4, block=3, steps=2)
        result = simulator.run(program)
        assert result.miss_breakdown.get("false_sharing", 0) == 0


class TestBlackscholes:
    def test_globals_shared_by_all_threads(self):
        from repro.memory.directory import DirState
        cfg = tiny_config(4)
        simulator = Simulator(cfg)
        program = get_workload("blackscholes").main(nthreads=4,
                                                    options=64)
        simulator.run(program)
        # Some line must end fully shared by all four tiles (the
        # globals table).
        fully_shared = 0
        for directory in simulator.engine.directories:
            for entry in directory.entries.values():
                if entry.state is DirState.SHARED and \
                        len(entry.sharers) == 4:
                    fully_shared += 1
        assert fully_shared > 0

    def test_prices_deterministic(self):
        a = run("blackscholes", options=64)
        b = run("blackscholes", options=64)
        assert a.main_result == b.main_result


class TestOcean:
    def test_iterations_parameter(self):
        two = run("ocean_cont", scale=0.3, iterations=2)
        four = run("ocean_cont", scale=0.3, iterations=4)
        assert four.total_instructions > 1.5 * two.total_instructions

    def test_non_cont_strided_traffic(self):
        cont = run("ocean_cont", scale=0.3)
        non = run("ocean_non_cont", scale=0.3)
        assert non.counter("read_misses") > cont.counter("read_misses")


class TestFmm:
    def test_compute_dominates(self):
        result = run("fmm", scale=0.4)
        memory_ops = result.counter(".loads") + result.counter(".stores")
        assert result.total_instructions > 10 * memory_ops
