"""Workload kernels: completion, functional results, sharing patterns."""

import pytest

from repro.common.errors import ConfigError
from repro.sim.simulator import Simulator
from repro.workloads import WORKLOADS, get_workload
from tests.conftest import tiny_config

ALL = sorted(WORKLOADS)


class TestRegistry:
    def test_all_thirteen_registered(self):
        expected = {
            "barnes", "blackscholes", "cholesky", "fft", "fmm",
            "lu_cont", "lu_non_cont", "matrix_multiply", "ocean_cont",
            "ocean_non_cont", "radix", "water_nsquared", "water_spatial",
        }
        assert set(WORKLOADS) == expected

    def test_unknown_workload_raises(self):
        with pytest.raises(ConfigError):
            get_workload("specjbb")

    def test_factories_carry_descriptions(self):
        for factory in WORKLOADS.values():
            assert factory.description


@pytest.mark.parametrize("name", ALL)
class TestExecution:
    def test_runs_to_completion_with_coherent_memory(self, name):
        simulator = Simulator(tiny_config(4))
        program = get_workload(name).main(nthreads=4, scale=0.12)
        result = simulator.run(program)
        simulator.engine.check_coherence_invariants()
        assert result.simulated_cycles > 0
        assert result.main_result is not None

    def test_deterministic_given_seed(self, name):
        program = get_workload(name).main(nthreads=4, scale=0.12)
        a = Simulator(tiny_config(4)).run(program)
        program = get_workload(name).main(nthreads=4, scale=0.12)
        b = Simulator(tiny_config(4)).run(program)
        assert a.simulated_cycles == b.simulated_cycles
        assert a.main_result == b.main_result


class TestFunctionalResults:
    def test_radix_really_sorts(self):
        result = Simulator(tiny_config(4)).run(
            get_workload("radix").main(nthreads=4, scale=0.2))
        assert result.main_result is True

    def test_cholesky_drains_queue(self):
        result = Simulator(tiny_config(4)).run(
            get_workload("cholesky").main(nthreads=4, scale=0.3))
        assert result.main_result is True

    def test_blackscholes_prices_positive(self):
        result = Simulator(tiny_config(4)).run(
            get_workload("blackscholes").main(nthreads=4, scale=0.2))
        assert result.main_result > 0


class TestSharingPatterns:
    """The properties Figure 8 depends on must hold at small scale."""

    def run_classified(self, name, scale=0.2, tiles=4):
        cfg = tiny_config(tiles)
        cfg.memory.classify_misses = True
        simulator = Simulator(cfg)
        result = simulator.run(get_workload(name).main(nthreads=tiles,
                                                       scale=scale))
        return result

    def test_fft_all_to_all_generates_sharing_misses(self):
        result = self.run_classified("fft")
        sharing = result.miss_breakdown.get("true_sharing", 0) + \
            result.miss_breakdown.get("false_sharing", 0)
        assert sharing > 0

    def test_fmm_low_communication(self):
        """fmm moves far fewer bytes per instruction than fft."""
        fmm = Simulator(tiny_config(4)).run(
            get_workload("fmm").main(nthreads=4, scale=0.2))
        fft = Simulator(tiny_config(4)).run(
            get_workload("fft").main(nthreads=4, scale=0.2))

        def comm_ratio(result):
            return result.counter("transport.bytes_sent") \
                / result.total_instructions

        assert comm_ratio(fmm) < comm_ratio(fft)

    def test_water_nsquared_takes_locks(self):
        result = Simulator(tiny_config(4)).run(
            get_workload("water_nsquared").main(nthreads=4, scale=0.3))
        assert result.counter("mcp.futex.futex_waits") >= 0
        assert result.counter("mcp.barrier_releases") >= 2

    def test_matrix_multiply_uses_messages(self):
        result = Simulator(tiny_config(4)).run(
            get_workload("matrix_multiply").main(nthreads=4, scale=1.0))
        assert result.counter("network.user_net.packets") > 0

    def test_lu_non_cont_touches_more_lines(self):
        """Strided layout: blocks share boundary lines with other
        owners -> coherence misses the contiguous layout avoids."""
        cont = Simulator(tiny_config(4)).run(
            get_workload("lu_cont").main(nthreads=4, n=32, block=4,
                                         sample=1))
        non = Simulator(tiny_config(4)).run(
            get_workload("lu_non_cont").main(nthreads=4, n=32, block=4,
                                             sample=1))
        cont_misses = cont.counter("read_misses") + \
            cont.counter("write_misses")
        non_misses = non.counter("read_misses") + \
            non.counter("write_misses")
        assert non_misses > cont_misses


class TestScaleParameter:
    def test_scale_grows_work(self):
        small = Simulator(tiny_config(4)).run(
            get_workload("fft").main(nthreads=4, scale=0.12))
        large = Simulator(tiny_config(4)).run(
            get_workload("fft").main(nthreads=4, scale=0.5))
        assert large.total_instructions > small.total_instructions
